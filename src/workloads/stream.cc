#include "workloads/stream.h"

#include <cctype>
#include <cmath>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/bitops.h"
#include "common/log.h"
#include "isa/builder.h"

namespace cyclops::workloads
{

using arch::Chip;
using arch::igAddr;
using arch::kIgDefault;
using arch::kIgOwn;
using isa::ProgramBuilder;

const char *
streamKernelName(StreamKernel kernel)
{
    switch (kernel) {
      case StreamKernel::Copy: return "Copy";
      case StreamKernel::Scale: return "Scale";
      case StreamKernel::Add: return "Add";
      case StreamKernel::Triad: return "Triad";
    }
    return "?";
}

namespace
{

constexpr double kScalar = 3.0;

/** Bytes per thread in the rdcounter snapshot buffer (2 × 8 × u32). */
constexpr u32 kCntBytesPerThread = 64;

/** Symbol naming the inner kernel loop, e.g. "triad_kernel". */
std::string
kernelSymbol(StreamKernel kernel)
{
    std::string name = streamKernelName(kernel);
    for (char &c : name)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return name + "_kernel";
}

/** Per-thread slice of the iteration space. */
struct Slice
{
    PhysAddr aStart, bStart, cStart;
    u32 strideBytes;
    u32 elements;
};

/** Resolved data layout for one experiment. */
struct Layout
{
    PhysAddr vecBase = 0x0002'0000; ///< above text+data
    u32 ept = 0;       ///< elements per thread (rounded)
    u32 total = 0;     ///< total elements per vector
    u8 ig = kIgDefault;
    std::vector<Slice> slices;
};

Layout
planLayout(const StreamConfig &cfg, const ChipConfig &chipCfg)
{
    Layout lay;
    lay.ept = std::max(8u, u32(roundUp(cfg.elementsPerThread, 8)));
    lay.total = lay.ept * cfg.threads;
    lay.ig = cfg.localCaches ? kIgOwn : kIgDefault;

    if (cfg.localCaches && cfg.partition == StreamPartition::Cyclic)
        fatal("STREAM local-cache mode requires blocked partitioning "
              "(line-aligned per-thread blocks)");

    const u32 eptBytes = lay.ept * 8;
    const u64 need =
        cfg.independent
            ? u64(cfg.threads) * 3 * roundUp(eptBytes, 64)
            : u64(3) * roundUp(u64(lay.total) * 8, 64);
    const u64 budget = u64(chipCfg.numBanks) * chipCfg.bankBytes -
                       lay.vecBase -
                       u64(chipCfg.numThreads) * 4096 /* stacks */;
    if (need > budget)
        fatal("STREAM size does not fit: need %llu bytes, %llu free "
              "(the chip has 8 MB of embedded memory)",
              static_cast<unsigned long long>(need),
              static_cast<unsigned long long>(budget));

    lay.slices.resize(cfg.threads);
    if (cfg.independent) {
        const u32 triple = u32(roundUp(eptBytes, 64)) * 3;
        for (u32 t = 0; t < cfg.threads; ++t) {
            Slice &s = lay.slices[t];
            const PhysAddr mine = lay.vecBase + t * triple;
            s.aStart = mine;
            s.bStart = mine + u32(roundUp(eptBytes, 64));
            s.cStart = mine + 2 * u32(roundUp(eptBytes, 64));
            s.strideBytes = 8;
            s.elements = lay.ept;
        }
        return lay;
    }

    const u32 vecBytes = u32(roundUp(u64(lay.total) * 8, 64));
    const PhysAddr aBase = lay.vecBase;
    const PhysAddr bBase = aBase + vecBytes;
    const PhysAddr cBase = bBase + vecBytes;

    if (cfg.partition == StreamPartition::Blocked) {
        for (u32 t = 0; t < cfg.threads; ++t) {
            Slice &s = lay.slices[t];
            const u32 off = t * lay.ept * 8;
            s.aStart = aBase + off;
            s.bStart = bBase + off;
            s.cStart = cBase + off;
            s.strideBytes = 8;
            s.elements = lay.ept;
        }
    } else {
        // Cyclic: groups of cfg.cyclicGroup threads interleave within a
        // region, so a group shares each eight-element cache line; each
        // group starts from a different region of the iteration space.
        const u32 group = std::max(1u, cfg.cyclicGroup);
        u32 regionStartElems = 0;
        for (u32 g = 0; g * group < cfg.threads; ++g) {
            const u32 members =
                std::min(group, cfg.threads - g * group);
            for (u32 p = 0; p < members; ++p) {
                const u32 t = g * group + p;
                Slice &s = lay.slices[t];
                const u32 startElem = regionStartElems + p;
                s.aStart = aBase + startElem * 8;
                s.bStart = bBase + startElem * 8;
                s.cStart = cBase + startElem * 8;
                s.strideBytes = members * 8;
                s.elements = lay.ept;
            }
            regionStartElems += members * lay.ept;
        }
    }
    return lay;
}

/** Emit the kernel body for @p unroll elements at stride offsets. */
void
emitBody(ProgramBuilder &b, StreamKernel kernel, u32 unroll, u32 stride)
{
    // r10 = a ptr, r11 = b ptr, r12 = c ptr, r8 pair = scalar s.
    // Loads are grouped first, FP ops next, stores last, so the
    // unrolled code issues independent instructions while the memory
    // operations complete (the point of Fig 5d).
    const u8 t0 = 32, u0 = 40, v0 = 48; // even pair register banks
    switch (kernel) {
      case StreamKernel::Copy: // c = a
        for (u32 k = 0; k < unroll; ++k)
            b.ld(u8(t0 + 2 * k), s32(k * stride), 10);
        for (u32 k = 0; k < unroll; ++k)
            b.sd(u8(t0 + 2 * k), s32(k * stride), 12);
        break;
      case StreamKernel::Scale: // b = s * c
        for (u32 k = 0; k < unroll; ++k)
            b.ld(u8(t0 + 2 * k), s32(k * stride), 12);
        for (u32 k = 0; k < unroll; ++k)
            b.fmuld(u8(u0 + 2 * k), u8(t0 + 2 * k), 8);
        for (u32 k = 0; k < unroll; ++k)
            b.sd(u8(u0 + 2 * k), s32(k * stride), 11);
        break;
      case StreamKernel::Add: // c = a + b
        for (u32 k = 0; k < unroll; ++k)
            b.ld(u8(t0 + 2 * k), s32(k * stride), 10);
        for (u32 k = 0; k < unroll; ++k)
            b.ld(u8(u0 + 2 * k), s32(k * stride), 11);
        for (u32 k = 0; k < unroll; ++k)
            b.faddd(u8(v0 + 2 * k), u8(t0 + 2 * k), u8(u0 + 2 * k));
        for (u32 k = 0; k < unroll; ++k)
            b.sd(u8(v0 + 2 * k), s32(k * stride), 12);
        break;
      case StreamKernel::Triad: // a = b + s * c
        for (u32 k = 0; k < unroll; ++k)
            b.ld(u8(v0 + 2 * k), s32(k * stride), 11); // b[i]
        for (u32 k = 0; k < unroll; ++k)
            b.ld(u8(t0 + 2 * k), s32(k * stride), 12); // c[i]
        for (u32 k = 0; k < unroll; ++k)
            b.fmadd(u8(v0 + 2 * k), u8(t0 + 2 * k), 8);
        for (u32 k = 0; k < unroll; ++k)
            b.sd(u8(v0 + 2 * k), s32(k * stride), 10);
        break;
    }
}

isa::Program
buildProgram(const StreamConfig &cfg, const Layout &lay, u32 iterations)
{
    if (cfg.unroll != 1 && cfg.unroll != 4)
        fatal("STREAM supports unroll factors 1 and 4 (got %u)",
              cfg.unroll);
    if (lay.ept % cfg.unroll != 0)
        fatal("elements per thread (%u) must divide by the unroll "
              "factor", lay.ept);

    // Unrolled bodies bake the element stride into displacement fields,
    // so every thread must share one stride; unroll-1 bodies take the
    // stride from the per-thread table (cyclic remainder groups).
    if (cfg.unroll > 1) {
        for (const Slice &s : lay.slices)
            if (s.strideBytes != lay.slices[0].strideBytes)
                fatal("cyclic STREAM with unrolling needs the thread "
                      "count to be a multiple of the group size");
    }

    ProgramBuilder b;

    // Scalar s and the per-thread parameter table live in the small
    // data section (read-only, chip-wide shared).
    const u32 sAddr = b.allocData(8, 8);
    b.pokeDouble(sAddr, kScalar);
    const u32 table = b.allocData(u32(lay.slices.size()) * 32, 64);
    for (u32 t = 0; t < lay.slices.size(); ++t) {
        const Slice &s = lay.slices[t];
        b.pokeWord(table + t * 32 + 0, igAddr(lay.ig, s.aStart));
        b.pokeWord(table + t * 32 + 4, igAddr(lay.ig, s.bStart));
        b.pokeWord(table + t * 32 + 8, igAddr(lay.ig, s.cStart));
        b.pokeWord(table + t * 32 + 12, s.elements / cfg.unroll);
        b.pokeWord(table + t * 32 + 16, cfg.unroll * s.strideBytes);
    }

    // Per-thread counter snapshot buffer: 8 u32s at entry to the
    // kernel loop, 8 more at exit (see StreamConfig::counterTable).
    u32 cntBuf = 0;
    if (cfg.counterTable) {
        cntBuf = b.allocData(cfg.threads * kCntBytesPerThread, 64);
        b.defineSymbol("cnt_buf", cntBuf);
    }

    // r4 = software thread index (set by the kernel at spawn).
    b.defineSymbol("stream_setup", b.here());
    b.slli(20, 4, 5); // ×32
    b.li(21, igAddr(kIgDefault, table));
    b.add(21, 21, 20);
    b.lw(24, 0, 21);  // a start
    b.lw(25, 4, 21);  // b start
    b.lw(26, 8, 21);  // c start
    b.lw(28, 12, 21); // inner iterations
    b.lw(23, 16, 21); // pointer bump per inner iteration
    b.li(22, igAddr(kIgDefault, sAddr));
    b.ld(8, 0, 22);   // scalar s
    b.li(30, s32(iterations));

    if (cfg.counterTable) {
        // r2 = &cnt_buf[tid]; dump the counter file before the loop.
        b.slli(2, 4, 6); // ×64
        b.li(3, igAddr(kIgDefault, cntBuf));
        b.add(2, 2, 3);
        for (u32 k = 0; k < isa::kNumCounterSprs; ++k) {
            b.rdcounter(3, u8(k));
            b.sw(3, s32(k * 4), 2);
        }
    }

    auto outer = b.newLabel();
    auto inner = b.newLabel();
    b.bind(outer);
    b.defineSymbol("stream_outer", b.here());
    b.mv(10, 24);
    b.mv(11, 25);
    b.mv(12, 26);
    b.mv(29, 28);
    b.bind(inner);
    b.defineSymbol(kernelSymbol(cfg.kernel), b.here());
    emitBody(b, cfg.kernel, cfg.unroll, lay.slices[0].strideBytes);
    b.add(10, 10, 23);
    b.add(11, 11, 23);
    b.add(12, 12, 23);
    b.addi(29, 29, -1);
    b.bne(29, 0, inner);
    b.addi(30, 30, -1);
    b.bne(30, 0, outer);
    b.defineSymbol("stream_epilogue", b.here());
    if (cfg.counterTable) {
        for (u32 k = 0; k < isa::kNumCounterSprs; ++k) {
            b.rdcounter(3, u8(k));
            b.sw(3, s32(32 + k * 4), 2);
        }
    }
    b.halt();

    return b.finish();
}

/** Host-side initial value patterns (arbitrary but verifiable). */
double
initA(u32 i)
{
    return 1.0 + double(i % 11);
}
double
initB(u32 i)
{
    return 2.0 + double(i % 7);
}
double
initC(u32 i)
{
    return 0.5 + double(i % 5);
}

void
initVectors(Chip &chip, const StreamConfig &cfg, const Layout &lay)
{
    // Write each thread's slice with the global element index pattern,
    // so verification is independent of the layout.
    std::vector<u8> buf;
    for (u32 t = 0; t < cfg.threads; ++t) {
        const Slice &s = lay.slices[t];
        const u32 strideElems = s.strideBytes / 8;
        // Dense slices write in one shot; strided ones element-wise.
        for (u32 e = 0; e < s.elements; ++e) {
            const u32 off = e * s.strideBytes;
            const double a = initA(t * s.elements + e);
            const double bv = initB(t * s.elements + e);
            const double c = initC(t * s.elements + e);
            chip.writePhys(s.aStart + off, &a, 8);
            chip.writePhys(s.bStart + off, &bv, 8);
            chip.writePhys(s.cStart + off, &c, 8);
        }
        (void)strideElems;
    }
}

bool
verify(Chip &chip, const StreamConfig &cfg, const Layout &lay)
{
    for (u32 t = 0; t < cfg.threads; ++t) {
        const Slice &s = lay.slices[t];
        for (u32 e = 0; e < s.elements; e += 97) {
            const u32 off = e * s.strideBytes;
            const u32 gi = t * s.elements + e;
            double got = 0, expect = 0;
            switch (cfg.kernel) {
              case StreamKernel::Copy:
                chip.readPhys(s.cStart + off, &got, 8);
                expect = initA(gi);
                break;
              case StreamKernel::Scale:
                chip.readPhys(s.bStart + off, &got, 8);
                expect = kScalar * initC(gi);
                break;
              case StreamKernel::Add:
                chip.readPhys(s.cStart + off, &got, 8);
                expect = initA(gi) + initB(gi);
                break;
              case StreamKernel::Triad:
                chip.readPhys(s.aStart + off, &got, 8);
                expect = initB(gi) + kScalar * initC(gi);
                break;
            }
            if (std::fabs(got - expect) > 1e-12) {
                warn("STREAM %s verify failed at thread %u elem %u: "
                     "got %f want %f",
                     streamKernelName(cfg.kernel), t, e, got, expect);
                return false;
            }
        }
    }
    return true;
}

/**
 * Fold the guest's rdcounter snapshots into the per-region counter
 * table: "setup" is the entry snapshot (thread start to loop entry),
 * "kernel" the exit-minus-entry delta, each summed over all threads.
 */
void
readCounterTable(const Chip &chip, const StreamConfig &cfg,
                 StreamResult *out)
{
    const u32 cntBuf = chip.program().symbol("cnt_buf");
    for (u32 t = 0; t < cfg.threads; ++t) {
        u32 snap[2][isa::kNumCounterSprs];
        chip.readPhys(cntBuf + t * kCntBytesPerThread, snap,
                      sizeof(snap));
        for (u32 k = 0; k < isa::kNumCounterSprs; ++k) {
            out->setupCounters[k] += snap[0][k];
            out->kernelCounters[k] += u32(snap[1][k] - snap[0][k]);
        }
    }
    std::string &tbl = out->counterTable;
    tbl = strprintf("STREAM %s counter regions (%u threads, summed)\n",
                    streamKernelName(cfg.kernel), cfg.threads);
    tbl += strprintf("%-10s %14s %14s\n", "counter", "setup", "kernel");
    for (u32 k = 0; k < isa::kNumCounterSprs; ++k)
        tbl += strprintf(
            "%-10s %14llu %14llu\n",
            isa::counterName(isa::kSprCntBase + k),
            static_cast<unsigned long long>(out->setupCounters[k]),
            static_cast<unsigned long long>(out->kernelCounters[k]));
}

/** Run with @p iterations kernel repetitions; returns total cycles. */
Cycle
timedRun(const StreamConfig &cfg, const ChipConfig &chipCfg,
         const Layout &lay, u32 iterations, bool *verified,
         u64 *instructions = nullptr,
         StreamResult *longRunOut = nullptr,
         StreamResult *hostOut = nullptr)
{
    Chip chip(chipCfg);
    kernel::Kernel kern(chip, cfg.policy);
    kern.load(buildProgram(cfg, lay, iterations));
    initVectors(chip, cfg, lay);
    kern.spawn(cfg.threads, chip.program().entry);
    if (kern.run(2'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("STREAM did not finish within the cycle limit");
    if (verified)
        *verified = verify(chip, cfg, lay);
    if (instructions)
        *instructions += chip.totalInstructions();
    if (hostOut && chipCfg.obs.hostObs)
        hostOut->host.add(chip.hostObsSnapshot());
    if (longRunOut) {
        // Only the long run exports: it is the representative steady-
        // state simulation, and a second export would clobber its files.
        longRunOut->attr = chip.chipAttribution();
        if (cfg.counterTable)
            readCounterTable(chip, cfg, longRunOut);
        chip.writeObservability();
    }
    return chip.now();
}

} // namespace

StreamResult
runStream(const StreamConfig &cfg, const ChipConfig &chipCfg)
{
    if (cfg.threads == 0)
        fatal("STREAM needs at least one thread");

    const Layout lay = planLayout(cfg, chipCfg);

    // Difference a 2-iteration and a 4-iteration run and divide by
    // two: the measured iterations execute against warm caches (what
    // STREAM's best-of-10 reports), and averaging two of them washes
    // out boundary overlap with the cold first iteration's tail.
    bool verified = false;
    u64 instructions = 0;
    StreamResult result;
    const Cycle shortRun =
        timedRun(cfg, chipCfg, lay, 2, nullptr, &instructions,
                 nullptr, &result);
    const Cycle longRun = timedRun(cfg, chipCfg, lay, 4, &verified,
                                   &instructions, &result, &result);
    const Cycle iter =
        longRun > shortRun ? (longRun - shortRun) / 2 : shortRun;

    result.iterationCycles = iter;
    result.simCycles = shortRun + longRun;
    result.instructions = instructions;
    result.bytesPerIteration = u64(lay.total) *
                               streamBytesPerElement(cfg.kernel);
    const double seconds = double(iter) / double(chipCfg.clockHz);
    result.totalGBs = double(result.bytesPerIteration) / seconds / 1e9;
    result.perThreadMBs = double(result.bytesPerIteration) /
                          cfg.threads / seconds / 1e6;
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
