/**
 * @file
 * Seeded transient-fault injection campaigns.
 *
 * Each campaign iteration generates a random (but deterministic, seed-
 * derived) SPMD program from the verify generator, computes its golden
 * final state on the architectural reference interpreter, then runs it
 * on the timing chip with exactly one transient fault injected mid-run:
 * a register bit flip, a memory byte bit flip, or a cache-line
 * invalidation. The outcome is classified by comparing the injected
 * run's *final* architectural state (memory image + console output)
 * against the golden model:
 *
 *   Masked   — run completed, final state identical to golden
 *   Detected — a precise guest exception was raised (GuestError/Check)
 *   Sdc      — run completed but the final state silently differs
 *   Crash    — wild execution (GuestError/Crash: out-of-range access,
 *              pc left the text section, ...)
 *   Hang     — the deadlock watchdog fired or the cycle budget ran out
 *
 * Final-state (not lockstep) comparison is deliberate: a fault may
 * perturb timing and instruction counts without corrupting the result,
 * and such runs are architecturally masked.
 *
 * Iterations are fully independent (one fresh Chip each), so campaigns
 * run on a SimPool and the report is byte-identical for any job count.
 *
 * A fourth kind, selected explicitly with CampaignOptions::kind =
 * FaultKind::Link, targets the multi-chip fabric instead of a chip:
 * each iteration runs the host-verified halo-exchange workload on a
 * 2x2x1 torus and degrades one directed link mid-run (dead, flaky,
 * flaky with checksum escapes, or always-corrupt). Masked means the
 * fault-tolerant fabric absorbed the fault (rerouting / retransmits),
 * Detected is a structured RunExit::FabricFailure, Sdc is a checksum
 * escape that corrupted the verified payload, and Hang covers retry
 * storms the watchdog had to break.
 */

#ifndef CYCLOPS_FAULT_FAULT_H
#define CYCLOPS_FAULT_FAULT_H

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace cyclops::fault
{

/** What a single injection perturbs. */
enum class FaultKind : u8
{
    Register,  ///< one bit of one architectural register of one TU
    Memory,    ///< one bit of one byte of the data/heap region
    CacheLine, ///< invalidate one D-cache line (timing-only)
    Link,      ///< degrade one fabric link of a multi-chip system
};

/** Display name of @p kind ("register", "memory", "cacheLine",
 *  "link"). */
const char *faultKindName(FaultKind kind);

/** Parse a fault kind display name; false on an unknown name. */
bool parseFaultKind(const char *name, FaultKind *out);

/** Classification of one injected run (see file comment). */
enum class Outcome : u8 { Masked, Detected, Sdc, Crash, Hang };

inline constexpr unsigned kNumOutcomes = 5;

/** Display name of @p outcome ("masked", "detected", ...). */
const char *outcomeName(Outcome outcome);

/** The fault one iteration injects (all fields seed-derived). */
struct FaultSpec
{
    FaultKind kind = FaultKind::Register;
    Cycle cycle = 0; ///< chip cycle the fault strikes at
    u32 thread = 0;  ///< Register: victim TU
    u32 reg = 0;     ///< Register: victim register (1..63)
    u32 addr = 0;    ///< Memory: victim byte address
    u32 bit = 0;     ///< Register/Memory: bit flipped
    u32 cache = 0;   ///< CacheLine: victim D-cache
    u32 line = 0;    ///< CacheLine: victim line index
    u32 linkSrc = 0; ///< Link: source chip of the victim link
    u32 linkDst = 0; ///< Link: destination chip of the victim link
    u32 ppm = 0;     ///< Link: corruption probability (0 = dead link)
    u32 escapePpm = 0; ///< Link: checksum-escape probability
};

/** Campaign parameters. */
struct CampaignOptions
{
    u64 seed = 1;      ///< campaign seed; iteration i derives from it
    u32 iterations = 100;
    u32 threads = 4;   ///< SPMD threads per generated program (1..8)
    u32 bodyOps = 48;  ///< program size knob (verify::GenOptions)
    u64 maxCycles = 200'000;      ///< per-run cycle budget (-> Hang)
    u64 watchdogCycles = 50'000;  ///< chip watchdog for injected runs
    EngineConfig engine; ///< cycle engine for the injected runs

    /**
     * Restrict the campaign to one fault kind. The chip kinds
     * (register / memory / cacheLine) are drawn uniformly per
     * iteration when unset. FaultKind::Link switches the workload
     * from a generated single-chip program to a halo exchange on a
     * 2x2x1 torus and injects one seed-derived fabric link fault
     * (dead / flaky / flaky-with-escapes / always-corrupt) mid-run;
     * the fault-tolerant fabric (DESIGN.md section 18) is what is
     * under test, so "masked" means rerouting or retransmission
     * absorbed the fault and "detected" means a structured
     * RunExit::FabricFailure.
     */
    bool kindSet = false;
    FaultKind kind = FaultKind::Register;

    /**
     * Observability for the *injected* runs only (the golden and
     * fault-free baseline runs stay quiet). Output paths should
     * contain "%t": it expands to "i<iteration>" so parallel campaign
     * jobs never collide on a file. Never changes outcomes.
     */
    ObsConfig obs;
};

/** One iteration's result. */
struct InjectionResult
{
    u64 seed = 0;   ///< derived program seed of this iteration
    FaultSpec spec;
    Outcome outcome = Outcome::Masked;
    u64 cycles = 0; ///< chip time when the injected run ended
    std::string detail; ///< guest-exception text for Detected/Crash
};

/** Whole-campaign result. */
struct CampaignResult
{
    CampaignOptions opts;
    std::vector<InjectionResult> injections; ///< in iteration order
    std::array<u64, kNumOutcomes> counts{};  ///< indexed by Outcome
};

/** Run iteration @p iter of a campaign (self-contained, thread-safe). */
InjectionResult runInjection(const CampaignOptions &opts, u32 iter);

/** Run the whole campaign on @p jobs host threads (0 = all cores). */
CampaignResult runCampaign(const CampaignOptions &opts, u32 jobs);

/**
 * Write the campaign report as deterministic JSON (schema
 * "cyclops-faultcamp-v1", no timestamps; byte-identical across runs
 * and job counts — tools/check_faultcamp.py validates it).
 */
void writeCampaignJson(const CampaignResult &result, std::FILE *out);

} // namespace cyclops::fault

#endif // CYCLOPS_FAULT_FAULT_H
