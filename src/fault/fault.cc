#include "fault/fault.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "net/topology.h"
#include "verify/fuzz.h"
#include "verify/prog_gen.h"
#include "verify/ref_interp.h"
#include "workloads/multichip.h"

namespace cyclops::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Register:
        return "register";
      case FaultKind::Memory:
        return "memory";
      case FaultKind::CacheLine:
        return "cacheLine";
      case FaultKind::Link:
        return "link";
    }
    return "?";
}

bool
parseFaultKind(const char *name, FaultKind *out)
{
    for (u8 k = 0; k <= u8(FaultKind::Link); ++k) {
        if (std::strcmp(name, faultKindName(FaultKind(k))) == 0) {
            *out = FaultKind(k);
            return true;
        }
    }
    return false;
}

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked:
        return "masked";
      case Outcome::Detected:
        return "detected";
      case Outcome::Sdc:
        return "sdc";
      case Outcome::Crash:
        return "crash";
      case Outcome::Hang:
        return "hang";
    }
    return "?";
}

namespace
{

/** The small-but-structurally-complete chip the campaigns run on. */
ChipConfig
campaignChip(const CampaignOptions &opts)
{
    ChipConfig cfg;
    cfg.numThreads = 8;
    cfg.numBanks = 4;
    cfg.bankBytes = 256 * 1024;
    cfg.fault.watchdogCycles = opts.watchdogCycles;
    cfg.engine = opts.engine;
    return cfg;
}

/**
 * Flush a chip's observability outputs on scope exit. The injected run
 * returns from several places (hang, guest exception, completion) and
 * all of them should leave stats/trace files behind when requested.
 */
struct ObsFlush
{
    arch::Chip &chip;
    ~ObsFlush()
    {
        if (chip.config().obs.anyOutput())
            chip.writeObservability();
    }
};

/** Build a fresh chip running @p gp from cycle 0. */
std::unique_ptr<arch::Chip>
spawnChip(const verify::GenProgram &gp, const ChipConfig &cfg)
{
    auto chip = std::make_unique<arch::Chip>(cfg);
    chip->loadProgram(gp.program);
    for (u32 t = 0; t < gp.threads; ++t) {
        chip->setUnit(t, std::make_unique<arch::ThreadUnit>(
                             t, *chip, gp.program.entry));
        chip->activate(t);
    }
    return chip;
}

/** Apply @p spec to @p chip (the moment the transient fault strikes). */
void
inject(arch::Chip &chip, const FaultSpec &spec)
{
    switch (spec.kind) {
      case FaultKind::Register: {
        auto *tu = static_cast<arch::ThreadUnit *>(chip.unit(spec.thread));
        tu->setReg(spec.reg, tu->reg(spec.reg) ^ (u32(1) << spec.bit));
        break;
      }
      case FaultKind::Memory: {
        u8 byte = 0;
        chip.readPhys(spec.addr, &byte, 1);
        byte ^= u8(1u << spec.bit);
        chip.writePhys(spec.addr, &byte, 1);
        break;
      }
      case FaultKind::CacheLine:
        chip.memsys().dcache(CacheId(spec.cache)).faultLine(spec.line);
        break;
      case FaultKind::Link:
        panic("link faults are injected by the fabric, not here");
    }
}

/** The multi-chip workload link-fault iterations run and verify. */
workloads::MultiChipConfig
campaignSystem(const CampaignOptions &opts)
{
    workloads::MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 2;
    mc.dimZ = 1;
    mc.torus = true;
    mc.threads = std::min<u32>(opts.threads, 8);
    mc.words = 8;
    mc.iters = 2;
    mc.engine = opts.engine;
    mc.maxCycles = opts.maxCycles;
    mc.chipFault.watchdogCycles = opts.watchdogCycles;
    return mc;
}

/**
 * One link-fault iteration: degrade one directed link of a 2x2x1
 * torus mid-run and classify how the fault-tolerant fabric coped.
 * The halo-exchange workload is host-verified, so "golden" is the
 * verification itself; the fault-free baseline only measures the
 * healthy run length for the strike-cycle draw.
 */
InjectionResult
runLinkInjection(const CampaignOptions &opts, u32 iter)
{
    InjectionResult res;
    res.seed = verify::iterationSeed(opts.seed, iter);

    workloads::MultiChipConfig mc = campaignSystem(opts);
    Cycle baselineCycles = opts.maxCycles;
    {
        const workloads::MultiChipResult base =
            workloads::runHaloExchange(mc);
        if (!base.verified)
            panic("fault campaign fabric baseline failed (seed %llu)",
                  static_cast<unsigned long long>(res.seed));
        baselineCycles = base.cycles;
    }

    // Derive the fault: a victim among the links that physically
    // exist, a degradation class, and a strike cycle inside the
    // healthy execution window.
    Rng rng(res.seed ^ 0xFA17'FA17'FA17'FA17ULL);
    FaultSpec &spec = res.spec;
    spec.kind = FaultKind::Link;
    spec.cycle = 1 + rng.below(std::max<Cycle>(baselineCycles, 2) - 1);

    net::NetConfig netCfg;
    netCfg.dimX = mc.dimX;
    netCfg.dimY = mc.dimY;
    netCfg.dimZ = mc.dimZ;
    netCfg.torus = mc.torus;
    const net::Topology topo(netCfg);
    std::vector<std::pair<u32, u32>> links;
    for (u32 c = 0; c < netCfg.numChips(); ++c)
        for (u32 d = 0; d < net::kNumDirs; ++d)
            if (topo.linkExists(c, net::Dir(d)))
                links.emplace_back(c, topo.neighborOf(c, net::Dir(d)));

    net::LinkFault lf;
    const auto victim = links[rng.below(links.size())];
    lf.src = victim.first;
    lf.dst = victim.second;
    switch (rng.below(4)) {
      case 0: // dead: routing must detour around it
        lf.kind = net::LinkFaultKind::Dead;
        break;
      case 1: // flaky: checksum catches, retransmits absorb
        lf.kind = net::LinkFaultKind::Flaky;
        lf.flakyPpm = 20'000 + u32(rng.below(180'000));
        break;
      case 2: // flaky, every corruption escapes the checksum -> SDC
        lf.kind = net::LinkFaultKind::Flaky;
        lf.flakyPpm = 20'000 + u32(rng.below(180'000));
        lf.escapePpm = 1'000'000;
        break;
      default: // always-corrupt: retries exhaust -> FabricFailure
        lf.kind = net::LinkFaultKind::Flaky;
        lf.flakyPpm = 1'000'000;
        break;
    }
    spec.linkSrc = lf.src;
    spec.linkDst = lf.dst;
    spec.ppm = lf.flakyPpm;
    spec.escapePpm = lf.escapePpm;

    mc.faults.links.push_back(lf);
    mc.faults.seed = res.seed;
    mc.faults.atCycle = spec.cycle;
    mc.obs = opts.obs;
    mc.obs.tag = strprintf("i%u", iter);

    try {
        const workloads::MultiChipResult r =
            workloads::runHaloExchange(mc);
        res.cycles = r.cycles;
        switch (r.exitReason) {
          case arch::RunExitReason::AllHalted:
            res.outcome = r.verified ? Outcome::Masked : Outcome::Sdc;
            break;
          case arch::RunExitReason::FabricFailure:
            res.outcome = Outcome::Detected;
            res.detail = r.exitDiagnostic;
            break;
          case arch::RunExitReason::Watchdog:
            res.outcome = Outcome::Hang;
            res.detail = "watchdog";
            break;
          default:
            res.outcome = Outcome::Hang;
            res.detail = "cycle budget exhausted";
            break;
        }
    } catch (const GuestError &err) {
        res.outcome = err.kind() == GuestError::Kind::Check
                          ? Outcome::Detected
                          : Outcome::Crash;
        res.detail = err.what();
    }
    return res;
}

} // namespace

InjectionResult
runInjection(const CampaignOptions &opts, u32 iter)
{
    if (opts.kindSet && opts.kind == FaultKind::Link)
        return runLinkInjection(opts, iter);

    InjectionResult res;
    res.seed = verify::iterationSeed(opts.seed, iter);

    verify::GenOptions gen;
    gen.seed = res.seed;
    gen.threads = opts.threads;
    gen.bodyOps = opts.bodyOps;
    const verify::GenProgram gp = verify::generate(gen);

    const ChipConfig cfg = campaignChip(opts);

    // Golden final state from the architectural reference model. The
    // generator emits only verifiable, terminating programs; anything
    // else here is a harness bug.
    verify::RefInterpreter ref(gp.program, cfg.memBytes(), cfg.numThreads);
    for (u32 t = 0; t < gp.threads; ++t) {
        if (ref.run(t, opts.maxCycles) != verify::StepStatus::Halted)
            panic("fault campaign golden run did not halt (seed %llu)",
                  static_cast<unsigned long long>(res.seed));
    }

    // Fault-free timing run, solely to learn the healthy run length so
    // the injection cycle lands inside the program's execution window.
    Cycle baselineCycles = opts.maxCycles;
    {
        auto chip = spawnChip(gp, cfg);
        if (chip->run(opts.maxCycles) == arch::RunExit::AllHalted)
            baselineCycles = chip->now();
    }

    // Derive the fault. All draws come from a stream decorrelated from
    // the program generator's so spec and program are independent.
    Rng rng(res.seed ^ 0xFA17'FA17'FA17'FA17ULL);
    FaultSpec &spec = res.spec;
    spec.kind = opts.kindSet ? opts.kind : FaultKind(rng.below(3));
    spec.cycle = 1 + rng.below(std::max<Cycle>(baselineCycles, 2) - 1);
    switch (spec.kind) {
      case FaultKind::Register:
        spec.thread = u32(rng.below(gp.threads));
        spec.reg = 1 + u32(rng.below(isa::kNumRegs - 1));
        spec.bit = u32(rng.below(32));
        break;
      case FaultKind::Memory:
        // Strike the program's live data footprint (shared pool plus
        // the per-thread write regions), not arbitrary dead memory.
        spec.addr = gp.program.dataBase +
                    u32(rng.below(gp.program.data.size()));
        spec.bit = u32(rng.below(8));
        break;
      case FaultKind::CacheLine:
        spec.cache = u32(rng.below(cfg.numCaches()));
        spec.line = u32(rng.below(
            cfg.dcacheSets() * cfg.dcacheAssoc));
        break;
      case FaultKind::Link:
        panic("link faults take the multi-chip path");
    }

    // Injected run: execute to the strike cycle, perturb, run to
    // completion (or budget / watchdog) and classify the final state.
    // Only this run carries the campaign's observability options,
    // tagged per iteration so parallel jobs write distinct files.
    ChipConfig injCfg = cfg;
    injCfg.obs = opts.obs;
    injCfg.obs.tag = strprintf("i%u", iter);
    auto chip = spawnChip(gp, injCfg);
    ObsFlush flush{*chip};
    try {
        arch::RunExit exit = chip->run(spec.cycle);
        if (exit == arch::RunExit::AllHalted || chip->liveUnits() > 0) {
            inject(*chip, spec);
            if (chip->liveUnits() > 0 && chip->now() < opts.maxCycles)
                exit = chip->run(opts.maxCycles - chip->now());
        }
        res.cycles = chip->now();
        if (chip->liveUnits() > 0) {
            res.outcome = Outcome::Hang;
            res.detail = exit == arch::RunExit::Watchdog
                             ? "watchdog"
                             : "cycle budget exhausted";
            return res;
        }
    } catch (const GuestError &err) {
        res.cycles = chip->now();
        res.outcome = err.kind() == GuestError::Kind::Check
                          ? Outcome::Detected
                          : Outcome::Crash;
        res.detail = err.what();
        return res;
    }

    // Completed: masked iff memory and console match the golden model.
    const u32 memBytes = cfg.memBytes();
    std::vector<u8> mem(memBytes);
    chip->readPhys(0, mem.data(), memBytes);
    const bool clean =
        std::memcmp(mem.data(), ref.memory().data(), memBytes) == 0 &&
        chip->console() == ref.console();
    res.outcome = clean ? Outcome::Masked : Outcome::Sdc;
    return res;
}

CampaignResult
runCampaign(const CampaignOptions &opts, u32 jobs)
{
    std::vector<u32> iters(opts.iterations);
    std::iota(iters.begin(), iters.end(), 0u);

    CampaignResult res;
    res.opts = opts;
    res.injections =
        parallelSweep(iters, SimPool::resolveJobs(jobs),
                      [&](u32 iter) { return runInjection(opts, iter); });
    for (const InjectionResult &inj : res.injections)
        ++res.counts[size_t(inj.outcome)];
    return res;
}

namespace
{

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out += strprintf("\\%c", c);
        else if (c == '\n')
            out += "\\n";
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strprintf("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

} // namespace

void
writeCampaignJson(const CampaignResult &result, std::FILE *out)
{
    const CampaignOptions &o = result.opts;
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"cyclops-faultcamp-v1\",\n"
                 "  \"campaign\": {\"seed\": %llu, \"iterations\": %u, "
                 "\"threads\": %u, \"bodyOps\": %u, \"maxCycles\": %llu, "
                 "\"watchdogCycles\": %llu, \"kind\": \"%s\"},\n",
                 static_cast<unsigned long long>(o.seed), o.iterations,
                 o.threads, o.bodyOps,
                 static_cast<unsigned long long>(o.maxCycles),
                 static_cast<unsigned long long>(o.watchdogCycles),
                 o.kindSet ? faultKindName(o.kind) : "mixed");

    std::fprintf(out, "  \"counts\": {");
    for (unsigned c = 0; c < kNumOutcomes; ++c)
        std::fprintf(out, "%s\"%s\": %llu", c ? ", " : "",
                     outcomeName(Outcome(c)),
                     static_cast<unsigned long long>(result.counts[c]));
    std::fprintf(out, "},\n  \"injections\": [\n");

    for (size_t i = 0; i < result.injections.size(); ++i) {
        const InjectionResult &inj = result.injections[i];
        const FaultSpec &s = inj.spec;
        std::fprintf(out,
                     "    {\"iter\": %zu, \"seed\": %llu, \"kind\": "
                     "\"%s\", \"cycle\": %llu",
                     i, static_cast<unsigned long long>(inj.seed),
                     faultKindName(s.kind),
                     static_cast<unsigned long long>(s.cycle));
        switch (s.kind) {
          case FaultKind::Register:
            std::fprintf(out,
                         ", \"thread\": %u, \"reg\": %u, \"bit\": %u",
                         s.thread, s.reg, s.bit);
            break;
          case FaultKind::Memory:
            std::fprintf(out, ", \"addr\": %u, \"bit\": %u", s.addr,
                         s.bit);
            break;
          case FaultKind::CacheLine:
            std::fprintf(out, ", \"cache\": %u, \"line\": %u", s.cache,
                         s.line);
            break;
          case FaultKind::Link:
            std::fprintf(out,
                         ", \"linkSrc\": %u, \"linkDst\": %u, "
                         "\"ppm\": %u, \"escapePpm\": %u",
                         s.linkSrc, s.linkDst, s.ppm, s.escapePpm);
            break;
        }
        std::fprintf(out, ", \"outcome\": \"%s\", \"cycles\": %llu",
                     outcomeName(inj.outcome),
                     static_cast<unsigned long long>(inj.cycles));
        if (!inj.detail.empty())
            std::fprintf(out, ", \"detail\": \"%s\"",
                         jsonEscape(inj.detail).c_str());
        std::fprintf(out, "}%s\n",
                     i + 1 < result.injections.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
}

} // namespace cyclops::fault
