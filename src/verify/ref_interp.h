/**
 * @file
 * Architectural reference interpreter: the golden model.
 *
 * Executes a Program over a flat byte-addressed memory with no timing,
 * no caches, no pipeline — only the architectural contract of the ISA:
 * 64 registers per thread, little-endian memory at igPhys(ea), SPR
 * side effects, and console traps. The differential runner steps it in
 * lockstep with the ThreadUnit timing frontend and compares state
 * after every committed instruction.
 *
 * Scratchpad interest groups, the barrier SPR and the cycle-counter
 * SPRs are timing-dependent and deliberately unsupported: a program
 * touching them reports StepStatus::Unsupported rather than producing
 * a bogus comparison.
 */

#ifndef CYCLOPS_VERIFY_REF_INTERP_H
#define CYCLOPS_VERIFY_REF_INTERP_H

#include <array>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace cyclops::verify
{

inline constexpr unsigned kNumUnitClasses = 16;

/** Result of stepping one reference thread. */
enum class StepStatus : u8
{
    Ok,          ///< one instruction executed
    Halted,      ///< thread is (now) halted
    Unsupported, ///< program left the verifiable subset; see error()
};

/**
 * Deliberate semantic bugs injectable into the reference model, used
 * to mutation-test the differential harness itself: a diff run with a
 * mutation enabled must FAIL, proving the harness can catch a real
 * divergence of the same class.
 */
enum class Mutation : u8
{
    None,
    AddOffByOne,  ///< add computes a + b + 1
    SltuFlipped,  ///< sltu computes a > b
    LbZeroExtends ///< lb forgets the sign extension
};

/** One thread's architectural state in the reference model. */
struct RefThread
{
    std::array<u32, isa::kNumRegs> regs{};
    u32 pc = 0;
    bool halted = false;
    u64 instructions = 0;
};

/** The golden-model interpreter over one program image. */
class RefInterpreter
{
  public:
    /**
     * @param program    image to execute (text is predecoded)
     * @param memBytes   size of the flat physical memory
     * @param numThreads value of the NTHREADS SPR
     */
    RefInterpreter(const isa::Program &program, u32 memBytes,
                   u32 numThreads);

    /** Thread state; created on first use with pc = program entry. */
    RefThread &thread(u32 tid);

    /** Inject a semantic bug (harness self-test). */
    void setMutation(Mutation m) { mutation_ = m; }

    /** Execute one instruction on @p tid. */
    StepStatus step(u32 tid);

    /** Run @p tid until it halts or @p maxInstrs execute. */
    StepStatus run(u32 tid, u64 maxInstrs);

    /** Why the last step returned Unsupported. */
    const std::string &error() const { return error_; }

    /** Console output accumulated by traps, in execution order. */
    const std::string &console() const { return console_; }

    /** The flat memory image (for final-state comparison). */
    const std::vector<u8> &memory() const { return mem_; }

    /** Executed-instruction histogram over isa::UnitClass. */
    const std::array<u64, kNumUnitClasses> &classCounts() const
    {
        return classCounts_;
    }

    /** Decoded instruction at @p pc, or nullptr outside text. */
    const isa::Instr *decodedAt(u32 pc) const;

  private:
    bool memRead(u32 ea, u8 bytes, u64 *value);
    bool memWrite(u32 ea, u8 bytes, u64 value);

    double regPair(const RefThread &t, unsigned even) const;
    void setRegPair(RefThread &t, unsigned even, double value);
    static void setReg(RefThread &t, unsigned index, u32 value);

    StepStatus unsupported(const RefThread &t, const std::string &why);

    isa::Program program_;
    std::vector<isa::Instr> decoded_;
    std::vector<u8> mem_;
    u32 numThreads_;
    std::map<u32, RefThread> threads_;
    std::string console_;
    std::string error_;
    std::array<u64, kNumUnitClasses> classCounts_{};
    Mutation mutation_ = Mutation::None;
};

} // namespace cyclops::verify

#endif // CYCLOPS_VERIFY_REF_INTERP_H
