/**
 * @file
 * Seeded random program generator and failure shrinker for the
 * differential fuzzer.
 *
 * Generated programs are SPMD (every thread runs the same text) and
 * well-formed by construction:
 *  - every backward branch is a loop bounded by a dedicated counter
 *    register that body code never clobbers, so programs terminate;
 *  - memory operations are naturally aligned and address a per-thread
 *    private write region or a shared read-only region, so multi-TU
 *    runs are deterministic regardless of interleaving;
 *  - console traps are guarded to thread 0 only (single writer);
 *  - timing-dependent SPRs (cycle counters, barrier) are never read.
 *
 * The register map reserves r20/r21 (region base addresses),
 * r22..r25 (loop counters), r26/r27 (address temporaries) and
 * r60/r61 (link registers); random computation uses r8..r15 for
 * integers and the even pairs r32..r46 for doubles.
 */

#ifndef CYCLOPS_VERIFY_PROG_GEN_H
#define CYCLOPS_VERIFY_PROG_GEN_H

#include <functional>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace cyclops::verify
{

/** Generation parameters. */
struct GenOptions
{
    u64 seed = 1;
    u32 threads = 1;    ///< SPMD hardware threads 0..threads-1
    u32 bodyOps = 48;   ///< top-level body items (loops add more)
};

/** A generated program plus the structure the shrinker needs. */
struct GenProgram
{
    isa::Program program;
    std::vector<isa::Instr> text; ///< decoded text, 1:1 with program.text
    u32 threads = 1;
    u64 seed = 0;
    u32 prologueLen = 0; ///< setup instructions the shrinker must keep

    /**
     * Dump as assemblable .s text (pc-relative branches, .word data).
     * Reassembling yields a bit-identical image: the generator places
     * data at the assembler's convention, roundUp(text end, 64).
     */
    std::string toAsm() const;
};

/** Generate one random program. */
GenProgram generate(const GenOptions &opts);

/** Rebuild a GenProgram after the shrinker edited its text. */
GenProgram withText(const GenProgram &base,
                    std::vector<isa::Instr> text);

/**
 * Shrink a failing program to a smaller reproducer: repeatedly nop out
 * instructions while @p stillFails holds, then compact surviving nops
 * out of the image (fixing up branch offsets). The prologue and any
 * program containing jalr (whose link-relative displacement cannot be
 * re-targeted) are kept intact during compaction.
 */
GenProgram shrink(const GenProgram &failing,
                  const std::function<bool(const GenProgram &)> &stillFails);

} // namespace cyclops::verify

#endif // CYCLOPS_VERIFY_PROG_GEN_H
