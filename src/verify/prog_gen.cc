#include "verify/prog_gen.h"

#include <cstring>

#include "arch/interest_group.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/disassembler.h"
#include "isa/encoding.h"

namespace cyclops::verify
{

using isa::Format;
using isa::Instr;
using isa::Opcode;

namespace
{

// Register map (see the header comment).
constexpr u8 kIntPool[] = {8, 9, 10, 11, 12, 13, 14, 15};
constexpr u8 kPairPool[] = {32, 34, 36, 38, 40, 42, 44, 46};
constexpr u8 kOwnBase = 20;
constexpr u8 kSharedBase = 21;
constexpr u8 kCounters[] = {22, 23, 24, 25};
constexpr u8 kAddrTmp = 26;
constexpr u8 kAtomTmp = 27;
constexpr u8 kLink = 61;

constexpr u32 kSharedBytes = 512;
constexpr u32 kOwnBytes = 256;

// Fixed prologue layout. The li constants embed the data base address,
// which depends on the final text length; generate() and the shrinker's
// compaction pass patch these indices after the length is known.
constexpr u32 kOwnLui = 2, kOwnOri = 3, kSharedLui = 5, kSharedOri = 6;

/** 13-bit logical immediate (0..8191) as its signed encoding field. */
s32
logicalField(u32 low13)
{
    return low13 >= 4096 ? s32(low13) - 8192 : s32(low13);
}

void
patchLi(std::vector<Instr> &text, u32 luiIndex, u32 value)
{
    text[luiIndex].imm = s32((value >> 13) & 0x7FFFF);
    text[luiIndex + 1].imm = logicalField(value & 0x1FFF);
}

/** Emission state for one generated program. */
struct Gen
{
    Rng rng;
    std::vector<Instr> text;
    u32 threads;
    u8 countersUsed = 0;

    explicit Gen(const GenOptions &opts)
        : rng(opts.seed), threads(opts.threads)
    {}

    u8 pool() { return kIntPool[rng.below(std::size(kIntPool))]; }
    u8 pair() { return kPairPool[rng.below(std::size(kPairPool))]; }

    void emitR(Opcode op, u8 rd, u8 ra, u8 rb)
    {
        text.push_back({op, rd, ra, rb, 0});
    }
    void emitI(Opcode op, u8 rd, u8 ra, s32 imm)
    {
        text.push_back({op, rd, ra, 0, imm});
    }

    /** A random interest-group field, any non-scratch size class. */
    u8 igField()
    {
        static constexpr arch::IgClass kClasses[] = {
            arch::IgClass::Own,  arch::IgClass::All,
            arch::IgClass::Sixteen, arch::IgClass::Eight,
            arch::IgClass::Four, arch::IgClass::Pair,
            arch::IgClass::One,
        };
        return arch::igEncode(kClasses[rng.below(std::size(kClasses))],
                              u8(rng.below(32)));
    }

    // --- Single-instruction ops (safe inside branch shadows) -----------

    void aluR()
    {
        static constexpr Opcode kOps[] = {
            Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
            Opcode::Xor, Opcode::Nor, Opcode::Sll, Opcode::Srl,
            Opcode::Sra, Opcode::Slt, Opcode::Sltu,
        };
        emitR(kOps[rng.below(std::size(kOps))], pool(), pool(), pool());
    }

    void aluI()
    {
        static constexpr Opcode kOps[] = {
            Opcode::Addi, Opcode::Andi, Opcode::Ori,  Opcode::Xori,
            Opcode::Slli, Opcode::Srli, Opcode::Srai, Opcode::Slti,
            Opcode::Sltiu,
        };
        const Opcode op = kOps[rng.below(std::size(kOps))];
        s32 imm;
        if (op == Opcode::Slli || op == Opcode::Srli || op == Opcode::Srai)
            imm = s32(rng.below(32));
        else
            imm = s32(rng.range(-4096, 4095));
        emitI(op, pool(), pool(), imm);
        if (rng.chance(0.1))
            text.back() = {Opcode::Lui, pool(), 0, 0,
                           s32(rng.below(1u << 19))};
    }

    void mulDiv()
    {
        static constexpr Opcode kOps[] = {Opcode::Mul, Opcode::Mulhu,
                                          Opcode::Div, Opcode::Divu};
        emitR(kOps[rng.below(std::size(kOps))], pool(), pool(), pool());
    }

    void fp()
    {
        switch (rng.below(8)) {
          case 0: {
            static constexpr Opcode kOps[] = {Opcode::Faddd, Opcode::Fsubd,
                                              Opcode::Fmuld, Opcode::Fdivd};
            emitR(kOps[rng.below(4)], pair(), pair(), pair());
            break;
          }
          case 1:
            emitR(rng.chance(0.5) ? Opcode::Fmadd : Opcode::Fmsub, pair(),
                  pair(), pair());
            break;
          case 2: {
            static constexpr Opcode kOps[] = {
                Opcode::Fsqrtd, Opcode::Fnegd, Opcode::Fabsd, Opcode::Fmovd};
            emitR(kOps[rng.below(4)], pair(), pair(), 0);
            break;
          }
          case 3: {
            static constexpr Opcode kOps[] = {Opcode::Fadds, Opcode::Fsubs,
                                              Opcode::Fmuls};
            emitR(kOps[rng.below(3)], pool(), pool(), pool());
            break;
          }
          case 4: emitR(Opcode::Fcvtdw, pair(), pool(), 0); break;
          case 5: emitR(Opcode::Fcvtwd, pool(), pair(), 0); break;
          default: {
            static constexpr Opcode kOps[] = {Opcode::Fclt, Opcode::Fcle,
                                              Opcode::Fceq};
            emitR(kOps[rng.below(3)], pool(), pair(), pair());
            break;
          }
        }
    }

    void spr()
    {
        static constexpr u8 kSafeSprs[] = {isa::kSprTid, isa::kSprNThreads,
                                           isa::kSprMemSize};
        emitI(Opcode::Mfspr, pool(), 0, kSafeSprs[rng.below(3)]);
    }

    void simple()
    {
        switch (rng.below(10)) {
          case 0: case 1: case 2: aluR(); break;
          case 3: case 4: case 5: aluI(); break;
          case 6: mulDiv(); break;
          case 7: case 8: fp(); break;
          default: spr(); break;
        }
    }

    // --- Memory ---------------------------------------------------------

    void load()
    {
        static constexpr Opcode kOps[] = {Opcode::Lb, Opcode::Lbu,
                                          Opcode::Lh, Opcode::Lhu,
                                          Opcode::Lw, Opcode::Ld};
        const Opcode op = kOps[rng.below(std::size(kOps))];
        const u32 size = isa::meta(op).memBytes;
        const bool shared = rng.chance(0.5);
        const u32 region = shared ? kSharedBytes : kOwnBytes;
        const s32 disp = s32(rng.below(region / size) * size);
        emitI(op, op == Opcode::Ld ? pair() : pool(),
              shared ? kSharedBase : kOwnBase, disp);
    }

    void store()
    {
        static constexpr Opcode kOps[] = {Opcode::Sb, Opcode::Sh,
                                          Opcode::Sw, Opcode::Sd};
        const Opcode op = kOps[rng.below(std::size(kOps))];
        const u32 size = isa::meta(op).memBytes;
        const s32 disp = s32(rng.below(kOwnBytes / size) * size);
        emitI(op, op == Opcode::Sd ? pair() : pool(), kOwnBase, disp);
    }

    void indexed()
    {
        const bool wide = rng.chance(0.4);
        // Mask a pool value into an aligned in-region offset.
        emitI(Opcode::Andi, kAddrTmp, pool(), wide ? 0xF8 : 0xFC);
        switch (rng.below(4)) {
          case 0:
            emitR(wide ? Opcode::Ldx : Opcode::Lwx,
                  wide ? pair() : pool(),
                  rng.chance(0.5) ? kSharedBase : kOwnBase, kAddrTmp);
            break;
          default:
            emitR(wide ? Opcode::Sdx : Opcode::Swx,
                  wide ? pair() : pool(), kOwnBase, kAddrTmp);
            break;
        }
    }

    void atomic()
    {
        emitI(Opcode::Addi, kAtomTmp, kOwnBase,
              s32(rng.below(kOwnBytes / 4) * 4));
        switch (rng.below(4)) {
          case 0: emitR(Opcode::Amoadd, pool(), kAtomTmp, pool()); break;
          case 1: emitR(Opcode::Amoswap, pool(), kAtomTmp, pool()); break;
          case 2: emitR(Opcode::Amocas, pool(), kAtomTmp, pool()); break;
          default: emitR(Opcode::Amotas, pool(), kAtomTmp, 0); break;
        }
    }

    void cacheOp()
    {
        static constexpr Opcode kOps[] = {Opcode::Pref, Opcode::Dcbf,
                                          Opcode::Dcbi};
        emitI(kOps[rng.below(3)], 0, kOwnBase,
              s32(rng.below(kOwnBytes / 4) * 4));
    }

    // --- Control --------------------------------------------------------

    void forwardSkip()
    {
        static constexpr Opcode kOps[] = {Opcode::Beq,  Opcode::Bne,
                                          Opcode::Blt,  Opcode::Bge,
                                          Opcode::Bltu, Opcode::Bgeu};
        const u32 span = 1 + u32(rng.below(3));
        text.push_back({kOps[rng.below(std::size(kOps))], 0, pool(),
                        pool(), s32(span)});
        for (u32 i = 0; i < span; ++i)
            simple();
    }

    void boundedLoop()
    {
        if (countersUsed >= std::size(kCounters))
            return simple();
        const u8 rc = kCounters[countersUsed++];
        const s32 trips = s32(1 + rng.below(4));
        emitI(Opcode::Addi, rc, 0, trips);
        const u32 body = 2 + u32(rng.below(4));
        for (u32 i = 0; i < body; ++i)
            simple();
        emitI(Opcode::Addi, rc, rc, -1);
        text.push_back({Opcode::Bne, 0, rc, 0, -s32(body + 2)});
    }

    void jalSkip()
    {
        const u32 span = u32(rng.below(3));
        text.push_back({Opcode::Jal, 0, 0, 0, s32(span)});
        for (u32 i = 0; i < span; ++i)
            simple(); // dead code, but must stay decodable
    }

    void jalrHop()
    {
        // jal captures the next pc; the jalr lands just past itself, so
        // the hop is control-safe while exercising link arithmetic.
        text.push_back({Opcode::Jal, kLink, 0, 0, 0});
        const u32 span = u32(rng.below(3));
        for (u32 i = 0; i < span; ++i)
            simple();
        emitI(Opcode::Jalr, 0, kLink, s32(4 * (span + 1)));
    }

    void guardedPrint()
    {
        // Only thread 0 may write the console (single deterministic
        // writer); r4 is the trap argument and is restored to the
        // thread index afterwards.
        emitI(Opcode::Mfspr, kAddrTmp, 0, isa::kSprTid);
        text.push_back({Opcode::Bne, 0, kAddrTmp, 0, 3});
        emitI(Opcode::Addi, 4, pool(), 0);
        emitI(Opcode::Trap, 0, 0,
              rng.chance(0.5) ? isa::kTrapPutInt : isa::kTrapPutHex);
        emitI(Opcode::Mfspr, 4, 0, isa::kSprTid);
    }

    void bodyItem()
    {
        switch (rng.below(20)) {
          case 0: case 1: case 2: aluR(); break;
          case 3: case 4: aluI(); break;
          case 5: mulDiv(); break;
          case 6: case 7: load(); break;
          case 8: case 9: store(); break;
          case 10: indexed(); break;
          case 11: atomic(); break;
          case 12: case 13: fp(); break;
          case 14: spr(); break;
          case 15: emitR(Opcode::Sync, 0, 0, 0); break;
          case 16: cacheOp(); break;
          case 17: forwardSkip(); break;
          case 18: boundedLoop(); break;
          default:
            switch (rng.below(3)) {
              case 0: jalSkip(); break;
              case 1: jalrHop(); break;
              default: guardedPrint(); break;
            }
            break;
        }
    }
};

/** Encode @p gp.text into gp.program.text. */
void
encodeText(GenProgram &gp)
{
    gp.program.text.clear();
    gp.program.text.reserve(gp.text.size());
    for (const Instr &i : gp.text)
        gp.program.text.push_back(isa::encodeOrDie(i));
}

} // namespace

GenProgram
generate(const GenOptions &opts)
{
    Gen g(opts);
    GenProgram gp;
    gp.threads = opts.threads;
    gp.seed = opts.seed;

    const u8 ownField = g.igField();
    const u8 sharedField = g.igField();

    // Prologue: region bases, then seed the integer and FP pools from
    // shared data so random computation starts from seeded values.
    g.emitI(Opcode::Mfspr, kAddrTmp, 0, isa::kSprTid);
    g.emitI(Opcode::Slli, kAddrTmp, kAddrTmp, 8); // tid * kOwnBytes
    g.emitI(Opcode::Lui, kOwnBase, 0, 0);         // patched below
    g.emitI(Opcode::Ori, kOwnBase, kOwnBase, 0);  // patched below
    g.emitR(Opcode::Add, kOwnBase, kOwnBase, kAddrTmp);
    g.emitI(Opcode::Lui, kSharedBase, 0, 0);      // patched below
    g.emitI(Opcode::Ori, kSharedBase, kSharedBase, 0); // patched below
    for (unsigned i = 0; i < 4; ++i)
        g.emitI(Opcode::Lw, kIntPool[i], kSharedBase,
                s32(128 + 4 * i + g.rng.below(16) * 4));
    for (unsigned i = 0; i < 4; ++i)
        g.emitI(Opcode::Ld, kPairPool[i], kSharedBase,
                s32(g.rng.below(16) * 8));
    gp.prologueLen = u32(g.text.size());

    for (u32 i = 0; i < opts.bodyOps; ++i)
        g.bodyItem();

    if (g.rng.chance(0.5))
        g.guardedPrint();
    if (g.rng.chance(0.25))
        g.emitI(Opcode::Trap, 0, 0, isa::kTrapExit);
    else
        g.emitI(Opcode::Halt, 0, 0, 0);

    // Data image: 16 doubles + random words shared (read-only), then
    // one private 256-byte region per thread.
    gp.text = std::move(g.text);
    const u32 textEnd = u32(gp.text.size()) * 4;
    gp.program.textBase = 0;
    gp.program.dataBase = u32(roundUp(textEnd, 64));
    gp.program.entry = 0;
    gp.program.symbols["start"] = 0;

    const u32 sharedPa = gp.program.dataBase;
    const u32 ownPa = sharedPa + kSharedBytes;
    patchLi(gp.text, kOwnLui, arch::igAddr(ownField, ownPa));
    patchLi(gp.text, kSharedLui, arch::igAddr(sharedField, sharedPa));

    gp.program.data.resize(kSharedBytes + opts.threads * kOwnBytes);
    for (unsigned i = 0; i < 16; ++i) {
        const double v = g.rng.uniform(-1000.0, 1000.0);
        std::memcpy(&gp.program.data[8 * i], &v, 8);
    }
    for (size_t i = 128; i + 8 <= gp.program.data.size(); i += 8) {
        const u64 v = g.rng.next();
        std::memcpy(&gp.program.data[i], &v, 8);
    }

    encodeText(gp);
    return gp;
}

GenProgram
withText(const GenProgram &base, std::vector<Instr> text)
{
    GenProgram gp = base;
    gp.text = std::move(text);
    encodeText(gp);
    return gp;
}

std::string
GenProgram::toAsm() const
{
    std::string out = strprintf("; fuzz reproducer: seed=%llu threads=%u\n"
                                ".text\nstart:\n",
                                static_cast<unsigned long long>(seed),
                                threads);
    for (const isa::Instr &i : text)
        out += "    " + isa::disassemble(i) + "\n";
    out += ".data\n";
    for (size_t off = 0; off + 4 <= program.data.size(); off += 4) {
        u32 word;
        std::memcpy(&word, &program.data[off], 4);
        out += strprintf("    .word 0x%08x\n", word);
    }
    return out;
}

GenProgram
shrink(const GenProgram &failing,
       const std::function<bool(const GenProgram &)> &stillFails)
{
    GenProgram cur = failing;

    // Pass 1: replace instructions with nop while the failure persists.
    // The prologue and the final terminator are protected: removing the
    // address setup could alias the threads' private regions, and a
    // program must still halt.
    bool changed = true;
    while (changed) {
        changed = false;
        for (u32 i = cur.prologueLen; i + 1 < u32(cur.text.size()); ++i) {
            if (cur.text[i].op == Opcode::Nop)
                continue;
            std::vector<Instr> t = cur.text;
            t[i] = Instr{};
            GenProgram cand = withText(cur, std::move(t));
            if (stillFails(cand)) {
                cur = std::move(cand);
                changed = true;
            }
        }
    }

    // Pass 2: reduce surviving loop trip counts to one.
    for (u32 i = cur.prologueLen; i < u32(cur.text.size()); ++i) {
        const Instr &in = cur.text[i];
        const bool counterInit =
            in.op == Opcode::Addi && in.ra == 0 && in.rd >= kCounters[0] &&
            in.rd <= kCounters[std::size(kCounters) - 1] && in.imm > 1;
        if (!counterInit)
            continue;
        std::vector<Instr> t = cur.text;
        t[i].imm = 1;
        GenProgram cand = withText(cur, std::move(t));
        if (stillFails(cand))
            cur = std::move(cand);
    }

    // Pass 3: compact the nops out, adjusting branch offsets. A jalr's
    // displacement is relative to a link register value, which index
    // remapping cannot fix, so programs that kept one stay uncompacted.
    for (const Instr &in : cur.text)
        if (in.op == Opcode::Jalr)
            return cur;

    const u32 n = u32(cur.text.size());
    std::vector<u32> newIndex(n + 1);
    std::vector<Instr> packed;
    u32 removed = 0;
    for (u32 i = 0; i < n; ++i) {
        newIndex[i] = i - removed;
        if (i >= cur.prologueLen && cur.text[i].op == Opcode::Nop &&
            i + 1 < n) {
            ++removed;
            continue;
        }
        packed.push_back(cur.text[i]);
    }
    newIndex[n] = n - removed;
    if (removed == 0)
        return cur;

    for (u32 i = 0; i < n; ++i) {
        const Instr &in = cur.text[i];
        const isa::InstrMeta &m = isa::meta(in.op);
        const bool relative = m.format == Format::B ||
                              m.format == Format::J;
        if (!relative)
            continue;
        const u32 j = newIndex[i];
        if (j >= packed.size() || !(packed[j] == in))
            continue; // the branch itself was removed
        const s64 oldTarget = s64(i) + 1 + in.imm;
        if (oldTarget < 0 || oldTarget > s64(n))
            continue; // out-of-image target: leave untouched
        // A removed-nop target falls through to the next survivor,
        // which newIndex already names.
        packed[j].imm = s32(s64(newIndex[u32(oldTarget)]) - s64(j) - 1);
    }

    GenProgram cand = withText(cur, std::move(packed));
    const u32 textEnd =
        cand.program.textBase + u32(cand.text.size()) * 4;
    cand.program.dataBase = u32(roundUp(textEnd, 64));
    const u8 ownFieldHi = u8(cur.text[kOwnLui].imm >> 11);
    (void)ownFieldHi;
    // Re-point the prologue li constants at the moved data sections,
    // preserving each region's interest-group field.
    auto liValue = [](const std::vector<Instr> &t, u32 lui) {
        return (u32(t[lui].imm) << 13) |
               (u32(t[lui + 1].imm) & 0x1FFF);
    };
    const u32 ownEa = liValue(cur.text, kOwnLui);
    const u32 sharedEa = liValue(cur.text, kSharedLui);
    const u32 delta = cur.program.dataBase - cand.program.dataBase;
    patchLi(cand.text, kOwnLui, ownEa - delta);
    patchLi(cand.text, kSharedLui, sharedEa - delta);
    encodeText(cand);
    return stillFails(cand) ? cand : cur;
}

} // namespace cyclops::verify
