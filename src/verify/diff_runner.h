/**
 * @file
 * Differential runner: executes one program on both the ThreadUnit
 * timing frontend and the architectural reference interpreter, in
 * lockstep, and reports the first divergence.
 *
 * The ThreadUnit executes functionally at issue time, so after every
 * simulated cycle each TU's committed-instruction count tells exactly
 * how many reference steps bring that thread to the same architectural
 * point; registers and pc are compared per committed instruction, and
 * memory plus console output once at the end of the run.
 */

#ifndef CYCLOPS_VERIFY_DIFF_RUNNER_H
#define CYCLOPS_VERIFY_DIFF_RUNNER_H

#include <array>
#include <string>

#include "common/config.h"
#include "verify/prog_gen.h"
#include "verify/ref_interp.h"

namespace cyclops::verify
{

/** Parameters of one differential run. */
struct DiffConfig
{
    u64 maxCycles = 200'000;            ///< timeout (runaway programs)
    Mutation mutation = Mutation::None; ///< harness self-test hook
    ChipConfig chip;                    ///< timing side configuration

    DiffConfig();
};

/** Outcome of one differential run. */
struct DiffResult
{
    bool ok = false;
    bool timeout = false;     ///< hit maxCycles (not a divergence)
    bool unsupported = false; ///< left the verifiable subset
    std::string message;      ///< human-readable report when !ok

    u32 divergentThread = 0;
    u64 divergentInstr = 0; ///< per-thread committed-instruction index

    u64 cycles = 0;
    u64 instructions = 0;
    std::array<u64, kNumUnitClasses> classCounts{};

    /** A genuine divergence (what the fuzzer and shrinker look for). */
    bool diverged() const { return !ok && !timeout && !unsupported; }
};

/** Run @p gp on both models and compare. */
DiffResult runDiff(const GenProgram &gp, const DiffConfig &cfg);

} // namespace cyclops::verify

#endif // CYCLOPS_VERIFY_DIFF_RUNNER_H
