#include "verify/ref_interp.h"

#include <cmath>
#include <cstring>

#include "arch/interest_group.h"
#include "common/bitops.h"
#include "common/log.h"
#include "isa/encoding.h"

namespace cyclops::verify
{

using arch::IgClass;
using arch::igDecode;
using arch::igField;
using arch::igPhys;
using isa::Instr;
using isa::InstrMeta;
using isa::Opcode;
using isa::UnitClass;

RefInterpreter::RefInterpreter(const isa::Program &program, u32 memBytes,
                               u32 numThreads)
    : program_(program), mem_(memBytes, 0), numThreads_(numThreads)
{
    if (!program.text.empty())
        std::memcpy(&mem_[program.textBase], program.text.data(),
                    program.textBytes());
    if (!program.data.empty())
        std::memcpy(&mem_[program.dataBase], program.data.data(),
                    program.data.size());
    decoded_.resize(program.text.size());
    for (size_t i = 0; i < program.text.size(); ++i)
        if (!isa::decode(program.text[i], &decoded_[i]))
            fatal("undecodable instruction word 0x%08x at 0x%06x",
                  program.text[i], program.textBase + u32(i) * 4);
}

RefThread &
RefInterpreter::thread(u32 tid)
{
    auto [it, fresh] = threads_.try_emplace(tid);
    if (fresh)
        it->second.pc = program_.entry;
    return it->second;
}

const Instr *
RefInterpreter::decodedAt(u32 pc) const
{
    if (pc < program_.textBase || pc % 4 != 0)
        return nullptr;
    const u32 index = (pc - program_.textBase) / 4;
    if (index >= decoded_.size())
        return nullptr;
    return &decoded_[index];
}

bool
RefInterpreter::memRead(u32 ea, u8 bytes, u64 *value)
{
    if (igDecode(igField(ea)).cls == IgClass::Scratch)
        return false;
    const u32 pa = igPhys(ea);
    if (pa % bytes != 0 || pa + bytes > mem_.size())
        return false;
    *value = 0;
    std::memcpy(value, &mem_[pa], bytes);
    return true;
}

bool
RefInterpreter::memWrite(u32 ea, u8 bytes, u64 value)
{
    if (igDecode(igField(ea)).cls == IgClass::Scratch)
        return false;
    const u32 pa = igPhys(ea);
    if (pa % bytes != 0 || pa + bytes > mem_.size())
        return false;
    std::memcpy(&mem_[pa], &value, bytes);
    return true;
}

void
RefInterpreter::setReg(RefThread &t, unsigned index, u32 value)
{
    if (index != 0)
        t.regs[index] = value;
}

double
RefInterpreter::regPair(const RefThread &t, unsigned even) const
{
    u64 raw = (u64(t.regs[even + 1]) << 32) | t.regs[even];
    double value;
    std::memcpy(&value, &raw, 8);
    return value;
}

void
RefInterpreter::setRegPair(RefThread &t, unsigned even, double value)
{
    u64 raw;
    std::memcpy(&raw, &value, 8);
    setReg(t, even, u32(raw));
    setReg(t, even + 1, u32(raw >> 32));
}

StepStatus
RefInterpreter::unsupported(const RefThread &t, const std::string &why)
{
    error_ = strprintf("pc=0x%06x: %s", t.pc, why.c_str());
    return StepStatus::Unsupported;
}

StepStatus
RefInterpreter::run(u32 tid, u64 maxInstrs)
{
    for (u64 i = 0; i < maxInstrs; ++i) {
        const StepStatus st = step(tid);
        if (st != StepStatus::Ok)
            return st;
    }
    return StepStatus::Ok;
}

StepStatus
RefInterpreter::step(u32 tid)
{
    RefThread &t = thread(tid);
    if (t.halted)
        return StepStatus::Halted;

    const Instr *fetched = decodedAt(t.pc);
    if (!fetched)
        return unsupported(t, "pc outside the text section");
    const Instr &instr = *fetched;
    const InstrMeta &m = isa::meta(instr.op);
    const u8 rd = instr.rd, ra = instr.ra, rb = instr.rb;
    const s32 imm = instr.imm;
    u32 nextPc = t.pc + 4;

    ++t.instructions;
    ++classCounts_[static_cast<u8>(m.unit)];

    switch (m.unit) {
      case UnitClass::IntAlu: {
        const u32 a = t.regs[ra];
        u32 result = 0;
        switch (instr.op) {
          case Opcode::Add:
            result = a + t.regs[rb];
            if (mutation_ == Mutation::AddOffByOne)
                ++result;
            break;
          case Opcode::Sub: result = a - t.regs[rb]; break;
          case Opcode::And: result = a & t.regs[rb]; break;
          case Opcode::Or: result = a | t.regs[rb]; break;
          case Opcode::Xor: result = a ^ t.regs[rb]; break;
          case Opcode::Nor: result = ~(a | t.regs[rb]); break;
          case Opcode::Sll: result = a << (t.regs[rb] & 31); break;
          case Opcode::Srl: result = a >> (t.regs[rb] & 31); break;
          case Opcode::Sra:
            result = u32(s32(a) >> (t.regs[rb] & 31));
            break;
          case Opcode::Slt: result = s32(a) < s32(t.regs[rb]); break;
          case Opcode::Sltu:
            result = mutation_ == Mutation::SltuFlipped ? a > t.regs[rb]
                                                        : a < t.regs[rb];
            break;
          case Opcode::Addi: result = a + u32(imm); break;
          case Opcode::Andi: result = a & u32(imm & 0x1FFF); break;
          case Opcode::Ori: result = a | u32(imm & 0x1FFF); break;
          case Opcode::Xori: result = a ^ u32(imm & 0x1FFF); break;
          case Opcode::Slli: result = a << (imm & 31); break;
          case Opcode::Srli: result = a >> (imm & 31); break;
          case Opcode::Srai: result = u32(s32(a) >> (imm & 31)); break;
          case Opcode::Slti: result = s32(a) < imm; break;
          case Opcode::Sltiu: result = a < u32(imm); break;
          case Opcode::Lui: result = u32(imm) << 13; break;
          default: panic("bad IntAlu opcode");
        }
        setReg(t, rd, result);
        break;
      }

      case UnitClass::IntMul: {
        const u64 product = u64(t.regs[ra]) * u64(t.regs[rb]);
        setReg(t, rd,
               instr.op == Opcode::Mul ? u32(product) : u32(product >> 32));
        break;
      }

      case UnitClass::IntDiv: {
        u32 result;
        const u32 a = t.regs[ra], b = t.regs[rb];
        if (b == 0) {
            result = ~0u; // division by zero yields all ones
        } else if (instr.op == Opcode::Div) {
            if (a == 0x8000'0000u && b == ~0u)
                result = a; // overflow wraps
            else
                result = u32(s32(a) / s32(b));
        } else {
            result = a / b;
        }
        setReg(t, rd, result);
        break;
      }

      case UnitClass::Branch: {
        bool taken = false;
        switch (instr.op) {
          case Opcode::Beq: taken = t.regs[ra] == t.regs[rb]; break;
          case Opcode::Bne: taken = t.regs[ra] != t.regs[rb]; break;
          case Opcode::Blt:
            taken = s32(t.regs[ra]) < s32(t.regs[rb]);
            break;
          case Opcode::Bge:
            taken = s32(t.regs[ra]) >= s32(t.regs[rb]);
            break;
          case Opcode::Bltu: taken = t.regs[ra] < t.regs[rb]; break;
          case Opcode::Bgeu: taken = t.regs[ra] >= t.regs[rb]; break;
          case Opcode::Jal:
            setReg(t, rd, t.pc + 4);
            taken = true;
            break;
          case Opcode::Jalr: {
            const u32 target = (t.regs[ra] + u32(imm)) & ~3u;
            setReg(t, rd, t.pc + 4);
            t.pc = target;
            return StepStatus::Ok;
          }
          default: panic("bad branch opcode");
        }
        t.pc = taken ? t.pc + 4 + u32(imm) * 4 : nextPc;
        return StepStatus::Ok;
      }

      case UnitClass::Load:
      case UnitClass::Store:
      case UnitClass::Atomic: {
        const bool indexed =
            m.format == isa::Format::R && m.unit != UnitClass::Atomic;
        const u32 ea = indexed ? t.regs[ra] + t.regs[rb]
                               : m.unit == UnitClass::Atomic
                                     ? t.regs[ra]
                                     : t.regs[ra] + u32(imm);

        if (m.unit == UnitClass::Atomic) {
            u64 raw = 0;
            if (!memRead(ea, 4, &raw))
                return unsupported(
                    t, strprintf("bad atomic address 0x%08x", ea));
            const u32 old = u32(raw);
            u32 fresh = old;
            bool doWrite = true;
            switch (instr.op) {
              case Opcode::Amoadd: fresh = old + t.regs[rb]; break;
              case Opcode::Amoswap: fresh = t.regs[rb]; break;
              case Opcode::Amocas:
                doWrite = old == t.regs[rd];
                fresh = t.regs[rb];
                break;
              case Opcode::Amotas: fresh = 1; break;
              default: panic("bad atomic opcode");
            }
            if (doWrite && !memWrite(ea, 4, fresh))
                return unsupported(
                    t, strprintf("bad atomic address 0x%08x", ea));
            setReg(t, rd, old);
        } else if (m.unit == UnitClass::Load) {
            u64 raw = 0;
            if (!memRead(ea, m.memBytes, &raw))
                return unsupported(
                    t, strprintf("bad load address 0x%08x", ea));
            switch (instr.op) {
              case Opcode::Lb:
                raw = mutation_ == Mutation::LbZeroExtends
                          ? u32(u8(raw))
                          : u32(s32(s8(raw)));
                break;
              case Opcode::Lh: raw = u32(s32(s16(raw))); break;
              default: break;
            }
            setReg(t, rd, u32(raw));
            if (m.memBytes == 8)
                setReg(t, rd + 1, u32(raw >> 32));
        } else {
            u64 value = t.regs[rd];
            if (m.memBytes == 8)
                value |= u64(t.regs[rd + 1]) << 32;
            if (!memWrite(ea, m.memBytes, value))
                return unsupported(
                    t, strprintf("bad store address 0x%08x", ea));
        }
        break;
      }

      case UnitClass::FpAdd:
      case UnitClass::FpMul:
      case UnitClass::FpDiv:
      case UnitClass::FpSqrt:
      case UnitClass::Fma: {
        switch (instr.op) {
          case Opcode::Faddd:
            setRegPair(t, rd, regPair(t, ra) + regPair(t, rb));
            break;
          case Opcode::Fsubd:
            setRegPair(t, rd, regPair(t, ra) - regPair(t, rb));
            break;
          case Opcode::Fmuld:
            setRegPair(t, rd, regPair(t, ra) * regPair(t, rb));
            break;
          case Opcode::Fdivd:
            setRegPair(t, rd, regPair(t, ra) / regPair(t, rb));
            break;
          case Opcode::Fsqrtd:
            setRegPair(t, rd, std::sqrt(regPair(t, ra)));
            break;
          case Opcode::Fmadd:
            setRegPair(t, rd,
                       regPair(t, ra) * regPair(t, rb) + regPair(t, rd));
            break;
          case Opcode::Fmsub:
            setRegPair(t, rd,
                       regPair(t, ra) * regPair(t, rb) - regPair(t, rd));
            break;
          case Opcode::Fnegd: setRegPair(t, rd, -regPair(t, ra)); break;
          case Opcode::Fabsd:
            setRegPair(t, rd, std::fabs(regPair(t, ra)));
            break;
          case Opcode::Fmovd: setRegPair(t, rd, regPair(t, ra)); break;
          case Opcode::Fadds:
          case Opcode::Fsubs:
          case Opcode::Fmuls: {
            float a, b;
            std::memcpy(&a, &t.regs[ra], 4);
            std::memcpy(&b, &t.regs[rb], 4);
            float result = instr.op == Opcode::Fadds   ? a + b
                           : instr.op == Opcode::Fsubs ? a - b
                                                       : a * b;
            u32 raw;
            std::memcpy(&raw, &result, 4);
            setReg(t, rd, raw);
            break;
          }
          case Opcode::Fcvtdw:
            setRegPair(t, rd, double(s32(t.regs[ra])));
            break;
          case Opcode::Fcvtwd:
            setReg(t, rd, u32(f64ToS32(regPair(t, ra))));
            break;
          case Opcode::Fclt:
            setReg(t, rd, regPair(t, ra) < regPair(t, rb));
            break;
          case Opcode::Fcle:
            setReg(t, rd, regPair(t, ra) <= regPair(t, rb));
            break;
          case Opcode::Fceq:
            setReg(t, rd, regPair(t, ra) == regPair(t, rb));
            break;
          default: panic("bad FP opcode");
        }
        break;
      }

      case UnitClass::Spr: {
        if (instr.op == Opcode::Mfspr) {
            switch (u32(imm)) {
              case isa::kSprTid: setReg(t, rd, tid); break;
              case isa::kSprNThreads: setReg(t, rd, numThreads_); break;
              case isa::kSprMemSize:
                setReg(t, rd, u32(mem_.size()) / 1024);
                break;
              default:
                return unsupported(
                    t, strprintf("mfspr of timing-dependent or unknown "
                                 "SPR %d", imm));
            }
        } else {
            return unsupported(
                t, strprintf("mtspr %d (SPR writes are timing-dependent)",
                             imm));
        }
        break;
      }

      case UnitClass::Sync:
      case UnitClass::CacheOp:
        break; // architecturally a no-op (ordering/placement only)

      case UnitClass::Misc: {
        if (instr.op == Opcode::Halt ||
            (instr.op == Opcode::Trap && u32(imm) == isa::kTrapExit)) {
            t.halted = true;
            return StepStatus::Halted;
        }
        if (instr.op == Opcode::Trap) {
            switch (u32(imm)) {
              case isa::kTrapPutChar: console_ += char(t.regs[4]); break;
              case isa::kTrapPutInt:
                console_ += strprintf("%d", s32(t.regs[4]));
                break;
              case isa::kTrapPutHex:
                console_ += strprintf("0x%x", t.regs[4]);
                break;
              default:
                return unsupported(
                    t, strprintf("unknown trap code %d", imm));
            }
        }
        break;
      }
    }
    t.pc = nextPc;
    return StepStatus::Ok;
}

} // namespace cyclops::verify
