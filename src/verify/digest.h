/**
 * @file
 * Architectural state digests: order-stable FNV-1a fingerprints of
 * memory ranges and register files, for cheap cross-run and cross-model
 * equality checks (determinism tests, golden-state comparisons).
 */

#ifndef CYCLOPS_VERIFY_DIGEST_H
#define CYCLOPS_VERIFY_DIGEST_H

#include <vector>

#include "arch/chip.h"
#include "common/types.h"

namespace cyclops::verify
{

inline constexpr u64 kFnvOffset = 0xCBF29CE484222325ull;
inline constexpr u64 kFnvPrime = 0x100000001B3ull;

/** Fold @p bytes into a running FNV-1a state. */
inline u64
fnv1a(const void *data, size_t bytes, u64 state = kFnvOffset)
{
    const u8 *p = static_cast<const u8 *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        state ^= p[i];
        state *= kFnvPrime;
    }
    return state;
}

/** Digest of the physical memory range [base, base + bytes). */
inline u64
memDigest(const arch::Chip &chip, PhysAddr base, u32 bytes)
{
    std::vector<u8> buf(bytes);
    chip.readPhys(base, buf.data(), bytes);
    return fnv1a(buf.data(), buf.size());
}

} // namespace cyclops::verify

#endif // CYCLOPS_VERIFY_DIGEST_H
