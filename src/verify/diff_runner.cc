#include "verify/diff_runner.h"

#include <cstring>
#include <memory>
#include <vector>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "isa/disassembler.h"

namespace cyclops::verify
{

DiffConfig::DiffConfig()
{
    // A small (but structurally complete: 2 quads, 1 I-cache, 4 banks)
    // chip keeps per-iteration construction and the final memory
    // comparison cheap across hundreds of fuzz iterations.
    chip.numThreads = 8;
    chip.numBanks = 4;
    chip.bankBytes = 256 * 1024;
}

namespace
{

/** The instruction the reference thread is about to execute. */
std::string
describePc(const RefInterpreter &ref, u32 pc)
{
    const isa::Instr *in = ref.decodedAt(pc);
    if (!in)
        return strprintf("pc=0x%06x (outside text)", pc);
    return strprintf("pc=0x%06x: %s", pc, isa::disassemble(*in).c_str());
}

std::string
classHistogram(const std::array<u64, kNumUnitClasses> &counts)
{
    std::string out;
    for (unsigned c = 0; c < kNumUnitClasses; ++c) {
        if (counts[c] == 0)
            continue;
        static constexpr const char *kClassNames[kNumUnitClasses] = {
            "IntAlu", "IntMul", "IntDiv", "Branch", "Load",  "Store",
            "Atomic", "FpAdd",  "FpMul",  "FpDiv",  "FpSqrt", "Fma",
            "Spr",    "Sync",   "CacheOp", "Misc",
        };
        out += strprintf("%s%s=%llu", out.empty() ? "" : " ",
                         kClassNames[c],
                         static_cast<unsigned long long>(counts[c]));
    }
    return out;
}

/** First differing register / pc between the two models, or "". */
std::string
stateDiff(const arch::ThreadUnit &tu, const RefThread &rt)
{
    std::string out;
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        if (tu.reg(r) != rt.regs[r])
            out += strprintf("  r%u: chip=0x%08x ref=0x%08x\n", r,
                             tu.reg(r), rt.regs[r]);
    }
    if (tu.pc() != rt.pc)
        out += strprintf("  pc: chip=0x%06x ref=0x%06x\n", u32(tu.pc()),
                         rt.pc);
    return out;
}

} // namespace

DiffResult
runDiff(const GenProgram &gp, const DiffConfig &cfg)
{
    DiffResult res;

    arch::Chip chip(cfg.chip);
    // Flush requested observability outputs on every return path
    // (timeout, unsupported, divergence, clean finish alike).
    struct Flush
    {
        arch::Chip &c;
        ~Flush()
        {
            if (c.config().obs.anyOutput())
                c.writeObservability();
        }
    } flush{chip};
    chip.loadProgram(gp.program);

    std::vector<arch::ThreadUnit *> tus(gp.threads);
    for (u32 t = 0; t < gp.threads; ++t) {
        auto tu = std::make_unique<arch::ThreadUnit>(t, chip,
                                                     gp.program.entry);
        tus[t] = tu.get();
        chip.setUnit(t, std::move(tu));
        chip.activate(t);
    }

    RefInterpreter ref(gp.program, chip.config().memBytes(),
                       cfg.chip.numThreads);
    ref.setMutation(cfg.mutation);

    std::vector<u64> committed(gp.threads, 0);

    while (chip.liveUnits() > 0) {
        if (chip.now() >= cfg.maxCycles) {
            res.timeout = true;
            res.message = strprintf(
                "timeout after %llu cycles (%llu instructions)",
                static_cast<unsigned long long>(chip.now()),
                static_cast<unsigned long long>(chip.totalInstructions()));
            res.cycles = chip.now();
            return res;
        }
        chip.run(1);

        for (u32 t = 0; t < gp.threads; ++t) {
            while (committed[t] < tus[t]->instructions()) {
                const u32 atPc = ref.thread(t).pc;
                const StepStatus st = ref.step(t);
                ++committed[t];
                if (st == StepStatus::Unsupported) {
                    res.unsupported = true;
                    res.message = ref.error();
                    return res;
                }
                const std::string diff = stateDiff(*tus[t], ref.thread(t));
                if (!diff.empty()) {
                    res.divergentThread = t;
                    res.divergentInstr = committed[t];
                    res.cycles = chip.now();
                    res.classCounts = ref.classCounts();
                    res.message = strprintf(
                        "thread %u diverged at instruction #%llu\n"
                        "  %s\n%s  executed so far: %s\n",
                        t,
                        static_cast<unsigned long long>(committed[t]),
                        describePc(ref, atPc).c_str(), diff.c_str(),
                        classHistogram(ref.classCounts()).c_str());
                    return res;
                }
            }
        }
    }

    // Per-thread halt agreement.
    for (u32 t = 0; t < gp.threads; ++t) {
        if (!ref.thread(t).halted) {
            res.divergentThread = t;
            res.message = strprintf(
                "thread %u: chip halted but reference did not (at %s)", t,
                describePc(ref, ref.thread(t).pc).c_str());
            return res;
        }
    }

    // Final memory image.
    const u32 memBytes = chip.config().memBytes();
    std::vector<u8> chipMem(memBytes);
    chip.readPhys(0, chipMem.data(), memBytes);
    if (std::memcmp(chipMem.data(), ref.memory().data(), memBytes) != 0) {
        u32 at = 0;
        while (chipMem[at] == ref.memory()[at])
            ++at;
        res.message = strprintf(
            "memory diverged at pa=0x%06x: chip=0x%02x ref=0x%02x", at,
            chipMem[at], ref.memory()[at]);
        return res;
    }

    // Console output.
    if (chip.console() != ref.console()) {
        res.message =
            strprintf("console diverged:\n  chip: \"%s\"\n  ref:  \"%s\"",
                      chip.console().c_str(), ref.console().c_str());
        return res;
    }

    res.ok = true;
    res.cycles = chip.now();
    res.instructions = chip.totalInstructions();
    res.classCounts = ref.classCounts();
    return res;
}

} // namespace cyclops::verify
