#include "verify/fuzz.h"

#include <cstdio>

#include "common/log.h"
#include "common/rng.h"

namespace cyclops::verify
{

u64
iterationSeed(u64 campaignSeed, u32 iteration)
{
    // splitmix64 of (campaign, iteration) — stable across platforms so
    // a reported seed reproduces the exact program anywhere.
    u64 z = campaignSeed + 0x9E3779B97F4A7C15ull * (iteration + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

FuzzResult
fuzzLoop(const FuzzOptions &opts)
{
    FuzzResult res;
    Rng mix(opts.seed);

    for (u32 i = 0; i < opts.iters; ++i) {
        GenOptions gen;
        gen.seed = iterationSeed(opts.seed, i);
        gen.threads = 1 + i % opts.maxThreads;
        gen.bodyOps = 24 + u32(mix.below(49)); // 24..72

        DiffConfig diff;
        diff.mutation = opts.mutation;
        diff.chip.engine = opts.engine;
        diff.chip.obs = opts.obs;
        diff.chip.obs.tag = strprintf("i%u", i);
        // Vary timing-only knobs: architectural results must not care.
        diff.chip.pibEnabled = mix.chance(0.9);
        diff.chip.burstEnabled = mix.chance(0.75);
        if (mix.chance(0.25))
            diff.chip.maxOutstandingMem = 1 + u32(mix.below(4));

        const GenProgram gp = generate(gen);
        const DiffResult r = runDiff(gp, diff);
        ++res.executed;
        res.instructions += r.instructions;

        if (opts.verbose)
            std::printf("iter %u seed=%llu threads=%u: %s\n", i,
                        static_cast<unsigned long long>(gen.seed),
                        gen.threads,
                        r.ok          ? "ok"
                        : r.timeout   ? "timeout"
                        : r.unsupported ? "unsupported"
                                        : "DIVERGED");

        if (r.timeout || r.unsupported) {
            ++res.timeouts;
            continue;
        }
        if (r.ok)
            continue;

        ++res.divergences;
        res.failingSeed = gen.seed;
        res.failingIter = i;
        res.failingThreads = gen.threads;

        GenProgram minimal = gp;
        if (opts.shrinkOnFail) {
            minimal = shrink(gp, [&](const GenProgram &cand) {
                return runDiff(cand, diff).diverged();
            });
        }
        const DiffResult rerun = runDiff(minimal, diff);
        res.report = rerun.message;
        res.reproducer = minimal.toAsm();
        for (const isa::Instr &in : minimal.text)
            if (in.op != isa::Opcode::Nop)
                ++res.reproducerLen;
        break;
    }
    return res;
}

} // namespace cyclops::verify
