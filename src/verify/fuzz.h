/**
 * @file
 * The fuzz loop: generate seeded random programs, run each through the
 * differential runner, shrink any failure to a minimal reproducer.
 * Shared by the cyclops-fuzz CLI and the verify tests.
 */

#ifndef CYCLOPS_VERIFY_FUZZ_H
#define CYCLOPS_VERIFY_FUZZ_H

#include <string>

#include "verify/diff_runner.h"
#include "verify/prog_gen.h"

namespace cyclops::verify
{

/** Fuzz campaign parameters. */
struct FuzzOptions
{
    u64 seed = 1;        ///< campaign seed; iteration i derives from it
    u32 iters = 200;     ///< programs to generate and diff
    u32 maxThreads = 4;  ///< thread counts cycle through 1..maxThreads
    bool shrinkOnFail = true;
    bool verbose = false; ///< per-iteration progress on stdout
    Mutation mutation = Mutation::None; ///< harness self-test hook
    EngineConfig engine; ///< cycle engine for the timing side

    /**
     * Observability for the timing-side chips. Output paths should
     * contain "%t" (expands to "i<iteration>") so successive
     * iterations do not overwrite each other. Never affects the diff.
     */
    ObsConfig obs;
};

/** Campaign outcome. */
struct FuzzResult
{
    u32 executed = 0;   ///< iterations actually run
    u32 divergences = 0;
    u32 timeouts = 0;   ///< runaway candidates (not failures)
    u64 instructions = 0;

    // First divergence, if any.
    u64 failingSeed = 0;  ///< derived program seed of the failing iteration
    u32 failingIter = 0;  ///< iteration index within the campaign
    u32 failingThreads = 0;
    std::string report;     ///< diff report of the (shrunk) reproducer
    std::string reproducer; ///< minimal reproducer as .s text
    u32 reproducerLen = 0;  ///< non-nop instructions in the reproducer
};

/** Deterministic per-iteration program seed. */
u64 iterationSeed(u64 campaignSeed, u32 iteration);

/**
 * Run the campaign. Stops at the first divergence (after shrinking it);
 * timeouts and unsupported programs are counted and skipped.
 */
FuzzResult fuzzLoop(const FuzzOptions &opts);

} // namespace cyclops::verify

#endif // CYCLOPS_VERIFY_FUZZ_H
