# CTest script: link-kind fault campaign smoke. Two identical
# --kind link campaigns at different job counts must be byte-identical
# (per-iteration seeds, strike cycles, and victim links are derived,
# not raced) and pass check_faultcamp.py's link-specific invariants
# (homogeneous kind, valid victim endpoints, dead links never SDC).
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(jobs 1 2)
    execute_process(
        COMMAND ${RUNNER} --kind link --seed 9 --iters 8 --jobs ${jobs}
            --out ${WORK_DIR}/camp_j${jobs}.json
        RESULT_VARIABLE run_rc
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR
            "cyclops-faultcamp --kind link --jobs ${jobs} failed "
            "(${run_rc}):\n${run_out}\n${run_err}")
    endif()
endforeach()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${WORK_DIR}/camp_j1.json
        --compare ${WORK_DIR}/camp_j2.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_faultcamp.py failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
