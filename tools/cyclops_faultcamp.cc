/**
 * @file
 * cyclops-faultcamp: seeded transient-fault injection campaign driver.
 *
 * Runs N independent iterations, each generating a random program,
 * computing its golden final state on the reference interpreter, and
 * executing it on the timing chip with one seed-derived transient
 * fault (register bit flip, memory bit flip, or cache-line kill)
 * injected mid-run. Outcomes are classified masked / detected / sdc /
 * crash / hang; the JSON report is deterministic (byte-identical for a
 * given seed at any --jobs).
 *
 *   cyclops-faultcamp --iters 1000 --out camp.json
 *   cyclops-faultcamp --seed 7 --iters 100 --jobs 1     serial rerun
 *
 * --kind restricts the campaign to one fault kind; "--kind link"
 * switches the workload to a multi-chip halo exchange on a 2x2x1
 * torus and injects one fabric link fault per iteration (dead /
 * flaky / flaky-with-escapes / always-corrupt), exercising the
 * fault-tolerant fabric of DESIGN.md section 18: masked means the
 * rerouting or the end-to-end retry absorbed the fault, detected is
 * a structured fabric-failure exit, sdc is a checksum escape.
 *
 * Observability passthrough (DESIGN.md section 10): --stats-json,
 * --stats-csv, --stats-interval, --trace-out, --trace-cats,
 * --trace-capacity and --host-obs apply to the *injected* runs (the
 * golden and baseline runs stay quiet). Put "%t" in output paths — it
 * expands to "i<iteration>" so parallel jobs never share a file:
 *
 *   cyclops-faultcamp --iters 16 --stats-json 'camp-%t.json'
 *
 * Exit status: 0 on a completed campaign (whatever the outcome mix),
 * 2 on a usage error.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.h"
#include "common/trace.h"
#include "fault/fault.h"

using namespace cyclops;

namespace
{

int
usage(const char *argv0, const char *why)
{
    if (why)
        std::fprintf(stderr, "%s: %s\n", argv0, why);
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--iters N] [--threads N] "
                 "[--body-ops N]\n"
                 "       [--kind register|memory|cacheLine|link]\n"
                 "       [--max-cycles N] [--watchdog N] [--jobs N] "
                 "[--out FILE]\n"
                 "       [--engine serial|sharded] [--engine-workers N]\n"
                 "       [--stats-json P] [--stats-csv P] "
                 "[--stats-interval N]\n"
                 "       [--trace-out P] [--trace-cats LIST] "
                 "[--trace-capacity N]\n"
                 "       [--host-obs]   (paths may contain %%t -> "
                 "\"i<iter>\")\n",
                 argv0);
    return 2;
}

/** Parse a whole-string nonnegative integer; false on malformed input. */
bool
parseU64(const char *text, u64 *out)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 0);
    if (errno != 0 || end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr)
        return false;
    *out = v;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    fault::CampaignOptions opts;
    u64 jobs = 0;
    std::string outPath;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto numArg = [&](u64 *out) {
            if (i + 1 >= argc || !parseU64(argv[++i], out)) {
                std::exit(usage(argv[0],
                                strprintf("%s needs a number", arg)
                                    .c_str()));
            }
        };
        u64 v = 0;
        if (std::strcmp(arg, "--seed") == 0) {
            numArg(&opts.seed);
        } else if (std::strcmp(arg, "--iters") == 0) {
            numArg(&v);
            opts.iterations = u32(v);
        } else if (std::strcmp(arg, "--threads") == 0) {
            numArg(&v);
            opts.threads = u32(v);
        } else if (std::strcmp(arg, "--body-ops") == 0) {
            numArg(&v);
            opts.bodyOps = u32(v);
        } else if (std::strcmp(arg, "--kind") == 0 && i + 1 < argc) {
            if (!fault::parseFaultKind(argv[++i], &opts.kind))
                return usage(argv[0],
                             strprintf("--kind: unknown fault kind '%s'",
                                       argv[i]).c_str());
            opts.kindSet = true;
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            numArg(&opts.maxCycles);
        } else if (std::strcmp(arg, "--watchdog") == 0) {
            numArg(&opts.watchdogCycles);
        } else if (std::strcmp(arg, "--jobs") == 0) {
            numArg(&jobs);
        } else if (std::strcmp(arg, "--engine") == 0 && i + 1 < argc) {
            if (!parseEngineKind(argv[++i], &opts.engine.kind))
                return usage(argv[0],
                             strprintf("--engine: unknown engine '%s'",
                                       argv[i]).c_str());
        } else if (std::strcmp(arg, "--engine-workers") == 0) {
            numArg(&v);
            opts.engine.workers = u32(v);
        } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(arg, "--stats-json") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsJson = argv[++i];
        } else if (std::strcmp(arg, "--stats-csv") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsCsv = argv[++i];
        } else if (std::strcmp(arg, "--stats-interval") == 0) {
            numArg(&v);
            opts.obs.statsInterval = u32(v);
        } else if (std::strcmp(arg, "--trace-out") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceOut = argv[++i];
        } else if (std::strcmp(arg, "--trace-cats") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceCats = parseTraceCats(argv[++i]);
        } else if (std::strcmp(arg, "--trace-capacity") == 0) {
            numArg(&v);
            opts.obs.traceCapacity = u32(v);
        } else if (std::strcmp(arg, "--host-obs") == 0) {
            opts.obs.hostObs = true;
        } else {
            return usage(argv[0],
                         strprintf("unknown argument '%s'", arg).c_str());
        }
    }
    if (opts.threads == 0 || opts.threads > 8)
        return usage(argv[0], "--threads must be 1..8");
    if (opts.iterations == 0)
        return usage(argv[0], "--iters must be nonzero");
    if (opts.maxCycles == 0)
        return usage(argv[0], "--max-cycles must be nonzero");
    // Tracing to a file without an explicit category list records all.
    if (!opts.obs.traceOut.empty() && opts.obs.traceCats == 0)
        opts.obs.traceCats = kTraceAll;

    const fault::CampaignResult res =
        fault::runCampaign(opts, u32(jobs));

    std::printf("%u injections:", opts.iterations);
    for (unsigned c = 0; c < fault::kNumOutcomes; ++c)
        std::printf(" %s=%llu", fault::outcomeName(fault::Outcome(c)),
                    static_cast<unsigned long long>(res.counts[c]));
    std::printf("\n");

    if (!outPath.empty()) {
        std::FILE *out = std::fopen(outPath.c_str(), "w");
        if (!out)
            fatal("cannot open %s for writing", outPath.c_str());
        fault::writeCampaignJson(res, out);
        std::fclose(out);
    } else {
        fault::writeCampaignJson(res, stdout);
    }
    return 0;
}
