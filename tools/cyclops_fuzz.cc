/**
 * @file
 * cyclops-fuzz: differential fuzzer driver.
 *
 * Generates seeded random programs, executes each on both the
 * ThreadUnit timing frontend and the architectural reference
 * interpreter, and reports the first divergence — shrunk to a minimal
 * reproducer and dumped as reassemblable .s text.
 *
 *   cyclops-fuzz --iters 500                   500-program campaign
 *   cyclops-fuzz --seed 42 --iters 1           reproduce one program
 *   cyclops-fuzz --threads 8 --no-shrink       wider SPMD, raw failure
 *   cyclops-fuzz --mutate add-off-by-one       harness self-test: must
 *                                              report a divergence
 *
 * Observability passthrough (DESIGN.md section 10): --stats-json,
 * --stats-csv, --stats-interval, --trace-out, --trace-cats,
 * --trace-capacity and --host-obs apply to the timing-side chips. Put
 * "%t" in output paths — it expands to "i<iteration>" so iterations
 * do not overwrite each other's files.
 *
 * Exit status: 0 on a clean campaign, 1 if any program diverged.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.h"
#include "common/trace.h"
#include "verify/fuzz.h"

using namespace cyclops;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--iters N] [--threads N] "
                 "[--no-shrink] [--verbose]\n"
                 "       [--engine serial|sharded] [--engine-workers N]\n"
                 "       [--mutate add-off-by-one|sltu-flipped|"
                 "lb-zero-extends]\n"
                 "       [--stats-json P] [--stats-csv P] "
                 "[--stats-interval N]\n"
                 "       [--trace-out P] [--trace-cats LIST] "
                 "[--trace-capacity N]\n"
                 "       [--host-obs]   (paths may contain %%t -> "
                 "\"i<iter>\")\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    verify::FuzzOptions opts;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
            opts.iters = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            opts.maxThreads = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
            opts.shrinkOnFail = false;
        } else if (std::strcmp(argv[i], "--shrink") == 0) {
            opts.shrinkOnFail = true;
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            opts.verbose = true;
        } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
            if (!parseEngineKind(argv[++i], &opts.engine.kind))
                usage(argv[0]);
        } else if (std::strcmp(argv[i], "--engine-workers") == 0 &&
                   i + 1 < argc) {
            opts.engine.workers = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--stats-json") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsJson = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-csv") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsCsv = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-interval") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsInterval = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceOut = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-cats") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceCats = parseTraceCats(argv[++i]);
        } else if (std::strcmp(argv[i], "--trace-capacity") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceCapacity = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--host-obs") == 0) {
            opts.obs.hostObs = true;
        } else if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
            const std::string name = argv[++i];
            if (name == "add-off-by-one")
                opts.mutation = verify::Mutation::AddOffByOne;
            else if (name == "sltu-flipped")
                opts.mutation = verify::Mutation::SltuFlipped;
            else if (name == "lb-zero-extends")
                opts.mutation = verify::Mutation::LbZeroExtends;
            else
                usage(argv[0]);
        } else {
            usage(argv[0]);
        }
    }
    if (opts.maxThreads == 0 || opts.maxThreads > 8)
        fatal("--threads must be 1..8");
    // Tracing to a file without an explicit category list records all.
    if (!opts.obs.traceOut.empty() && opts.obs.traceCats == 0)
        opts.obs.traceCats = kTraceAll;

    const verify::FuzzResult res = verify::fuzzLoop(opts);

    std::printf("%u programs, %llu instructions diffed, %u timeouts, "
                "%u divergences\n",
                res.executed,
                static_cast<unsigned long long>(res.instructions),
                res.timeouts, res.divergences);

    if (res.divergences == 0)
        return 0;

    std::printf("\nDIVERGENCE (iteration %u, program seed %llu, "
                "%u threads):\n%s\n"
                "minimal reproducer (%u instructions):\n%s\n"
                "reproduce with: cyclops-fuzz --seed %llu --iters %u\n",
                res.failingIter,
                static_cast<unsigned long long>(res.failingSeed),
                res.failingThreads, res.report.c_str(), res.reproducerLen,
                res.reproducer.c_str(),
                static_cast<unsigned long long>(opts.seed),
                res.failingIter + 1);
    return 1;
}
