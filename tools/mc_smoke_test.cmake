# CTest script: run cyclops-run --chips on the multi-chip SPMD smoke
# program and validate the merged multi-process trace (one
# "cyclops-chipN" process per chip) plus the per-chip stats files.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
    COMMAND ${RUNNER} -t 4 --chips 2,2,1
        --trace-out ${WORK_DIR}/trace.json --trace-cats all
        --stats-json ${WORK_DIR}/stats.json
        --manifest ${WORK_DIR}/manifest.json
        ${PROGRAM}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-run --chips failed (${run_rc}):\n${run_out}\n${run_err}")
endif()
# Every chip must have reported on its own console.
foreach(chip RANGE 3)
    if(NOT run_out MATCHES "\\[chip ${chip}\\]")
        message(FATAL_ERROR
            "no console output from chip ${chip}:\n${run_out}")
    endif()
endforeach()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} --expect-chips 4
        --trace ${WORK_DIR}/trace.json
        --stats ${WORK_DIR}/stats.json.chip0
        --stats ${WORK_DIR}/stats.json.chip3
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_trace.py --expect-chips failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

if(NOT EXISTS ${WORK_DIR}/manifest.json)
    message(FATAL_ERROR "cyclops-run --chips wrote no manifest")
endif()
file(READ ${WORK_DIR}/manifest.json manifest_text)
if(NOT manifest_text MATCHES "cyclops-manifest-v1")
    message(FATAL_ERROR "manifest.json lacks the schema marker:\n"
        "${manifest_text}")
endif()

# A mesh run of the same program must also complete (edge chips take
# the wraparound-free routes).
execute_process(
    COMMAND ${RUNNER} -t 2 --chips 2x2x1 --mesh ${PROGRAM}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-run --chips --mesh failed (${run_rc}):\n"
        "${run_out}\n${run_err}")
endif()
