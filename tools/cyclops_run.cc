/**
 * @file
 * cyclops-run: assemble a Cyclops assembly file and execute it on a
 * simulated chip.
 *
 *   cyclops-run prog.s                 run on 1 thread
 *   cyclops-run -t 64 prog.s           spawn 64 software threads
 *   cyclops-run -t 8 --balanced prog.s balanced thread allocation
 *   cyclops-run --stats prog.s         dump every statistic at exit
 *   cyclops-run --disasm prog.s        print the assembled code, don't run
 *
 * Degraded chips and robustness (DESIGN.md section 13):
 *   --disable-tu N     fuse off one thread unit       (repeatable)
 *   --disable-quad N   fuse off a quad: TUs+FPU+cache (repeatable)
 *   --disable-fpu N    fuse off one quad's FPU        (repeatable)
 *   --disable-dcache N fuse off one data cache        (repeatable)
 *   --disable-icache N fuse off one I-cache           (repeatable)
 *   --disable-bank N   fail one memory bank           (repeatable)
 *   --cache-ways N     live ways per D-cache set (0 = all)
 *   --watchdog N       deadlock watchdog window in cycles (0 = off)
 *   --timeout-seconds N  wall-clock limit (graceful stop via SIGALRM)
 *
 * Engine selection (DESIGN.md section 14; same results, faster host):
 *   --engine serial|sharded  cycle engine (default serial)
 *   --engine-workers N       sharded-engine host workers (0 = auto)
 *   --engine-sampled         fast-functional + sampled-timing mode
 *   --sample-period N        sampling period in cycles
 *   --sample-detail N        detailed-window length in cycles
 *
 * Observability (DESIGN.md section 10):
 *   --stats-json out.json    end-of-run counters/histograms as JSON
 *   --stats-csv out.csv      epoch-sampled counter time-series as CSV
 *   --stats-interval N       sample period in cycles (enables the series)
 *   --trace-out trace.json   Chrome-trace events (load in Perfetto)
 *   --trace-cats LIST        mem,cache,barrier,kernel,sched or "all"
 *   --trace-capacity N       tracer ring size in events
 *   --prof-out base          PC-sampling profile: base (JSON report),
 *                            base.folded (flamegraph folded stacks),
 *                            base.heatmap.csv (bank heatmap)
 *   --prof-interval N        sample period in cycles (default 512
 *                            when --prof-out is given)
 *   --host-obs               host-side simulator telemetry: hostObs
 *                            section in --stats-json, host process in
 *                            --trace-out (DESIGN.md section 15)
 *   --manifest out.json      per-run manifest (config hash, engine,
 *                            git describe, headline counters) for
 *                            tools/check_regress.py
 *
 * Threads start at the `start` label (or address 0) with the kernel's
 * register conventions: r1 = stack pointer, r4 = software thread
 * index, r5 = thread count. Console output (traps) goes to stdout.
 *
 * Exit status: 0 success, 1 guest fault or host error, 2 usage or
 * configuration error, 3 cycle limit, 4 deadlock watchdog,
 * 128+signal on SIGINT/SIGTERM/timeout (state flushed first).
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "arch/chip.h"
#include "common/config.h"
#include "common/hostobs.h"
#include "common/log.h"
#include "common/trace.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "kernel/kernel.h"

using namespace cyclops;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [-t N] [--balanced] [--stats] [--disasm] "
                 "[--max-cycles N]\n"
                 "       [--disable-tu N] [--disable-quad N] "
                 "[--disable-fpu N]\n"
                 "       [--disable-dcache N] [--disable-icache N] "
                 "[--disable-bank N]\n"
                 "       [--cache-ways N] [--watchdog N] "
                 "[--timeout-seconds N]\n"
                 "       [--engine serial|sharded] [--engine-workers N]\n"
                 "       [--engine-sampled] [--sample-period N] "
                 "[--sample-detail N]\n"
                 "       [--stats-json P] [--stats-csv P] "
                 "[--stats-interval N]\n"
                 "       [--trace-out P] [--trace-cats LIST] "
                 "[--trace-capacity N]\n"
                 "       [--prof-out P] [--prof-interval N]\n"
                 "       [--host-obs] [--manifest P] prog.s\n",
                 argv0);
}

/**
 * Report a malformed command line and exit 2. CLI mistakes are user
 * errors with structured messages, never fatal()/abort paths.
 */
[[noreturn]] void
argError(const char *argv0, const std::string &why)
{
    std::fprintf(stderr, "%s: %s\n", argv0, why.c_str());
    usage(argv0);
    std::exit(2);
}

/** Parse a whole-string nonnegative integer; false on malformed input. */
bool
parseU64(const char *text, u64 *out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr)
        return false;
    *out = v;
    return true;
}

void
stopHandler(int sig)
{
    arch::requestRunStop(sig);
}

} // namespace

int
main(int argc, char **argv)
{
    u32 threads = 1;
    bool balanced = false;
    bool dumpStats = false;
    bool disasmOnly = false;
    u64 maxCycles = 1'000'000'000ull;
    u64 timeoutSeconds = 0;
    ObsConfig obs;
    FaultConfig faultCfg;
    EngineConfig engineCfg;
    std::string manifestPath;
    const char *path = nullptr;
    const u64 startNs = hostNowNs();

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        // Flags taking one numeric operand share checked parsing.
        auto num = [&]() -> u64 {
            if (i + 1 >= argc)
                argError(argv[0],
                         strprintf("%s needs a numeric argument", arg));
            u64 v = 0;
            if (!parseU64(argv[++i], &v))
                argError(argv[0],
                         strprintf("%s: '%s' is not a nonnegative "
                                   "number", arg, argv[i]));
            return v;
        };
        if (std::strcmp(arg, "-t") == 0) {
            threads = u32(num());
        } else if (std::strcmp(arg, "--balanced") == 0) {
            balanced = true;
        } else if (std::strcmp(arg, "--stats") == 0) {
            dumpStats = true;
        } else if (std::strcmp(arg, "--disasm") == 0) {
            disasmOnly = true;
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            maxCycles = num();
        } else if (std::strcmp(arg, "--disable-tu") == 0) {
            faultCfg.disabledTus.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-quad") == 0) {
            faultCfg.disabledQuads.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-fpu") == 0) {
            faultCfg.disabledFpus.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-dcache") == 0) {
            faultCfg.disabledDcaches.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-icache") == 0) {
            faultCfg.disabledIcaches.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-bank") == 0) {
            faultCfg.disabledBanks.push_back(u32(num()));
        } else if (std::strcmp(arg, "--cache-ways") == 0) {
            faultCfg.cacheWays = u32(num());
        } else if (std::strcmp(arg, "--watchdog") == 0) {
            faultCfg.watchdogCycles = num();
        } else if (std::strcmp(arg, "--timeout-seconds") == 0) {
            timeoutSeconds = num();
        } else if (std::strcmp(arg, "--engine") == 0 && i + 1 < argc) {
            if (!parseEngineKind(argv[++i], &engineCfg.kind))
                argError(argv[0],
                         strprintf("--engine: unknown engine '%s' "
                                   "(serial, sharded)", argv[i]));
        } else if (std::strcmp(arg, "--engine-workers") == 0) {
            engineCfg.workers = u32(num());
        } else if (std::strcmp(arg, "--engine-sampled") == 0) {
            engineCfg.sampled = true;
        } else if (std::strcmp(arg, "--sample-period") == 0) {
            engineCfg.samplePeriod = u32(num());
        } else if (std::strcmp(arg, "--sample-detail") == 0) {
            engineCfg.sampleDetail = u32(num());
        } else if (std::strcmp(arg, "--stats-json") == 0 &&
                   i + 1 < argc) {
            obs.statsJson = argv[++i];
        } else if (std::strcmp(arg, "--stats-csv") == 0 && i + 1 < argc) {
            obs.statsCsv = argv[++i];
        } else if (std::strcmp(arg, "--stats-interval") == 0) {
            obs.statsInterval = u32(num());
        } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
            obs.traceOut = argv[++i];
        } else if (std::strcmp(arg, "--trace-cats") == 0 &&
                   i + 1 < argc) {
            obs.traceCats = parseTraceCats(argv[++i]);
        } else if (std::strcmp(arg, "--trace-capacity") == 0) {
            obs.traceCapacity = u32(num());
        } else if (std::strcmp(arg, "--prof-out") == 0 && i + 1 < argc) {
            obs.profOut = argv[++i];
        } else if (std::strcmp(arg, "--prof-interval") == 0) {
            obs.profInterval = u32(num());
        } else if (std::strcmp(arg, "--host-obs") == 0) {
            obs.hostObs = true;
        } else if (std::strcmp(arg, "--manifest") == 0 && i + 1 < argc) {
            manifestPath = argv[++i];
        } else if (arg[0] == '-') {
            argError(argv[0], strprintf("unknown argument '%s'", arg));
        } else if (path) {
            argError(argv[0], "more than one program file");
        } else {
            path = arg;
        }
    }
    if (!path)
        argError(argv[0], "no program file");
    if (threads == 0)
        argError(argv[0], "-t must be nonzero");

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open %s\n", argv[0], path);
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    isa::AsmResult result = isa::assemble(buffer.str());
    if (!result.ok) {
        std::fprintf(stderr, "%s: %s: %s\n", argv[0], path,
                     result.error.c_str());
        return 1;
    }
    const isa::Program &prog = result.program;

    if (disasmOnly) {
        for (size_t i = 0; i < prog.text.size(); ++i) {
            const u32 addr = prog.textBase + u32(i) * 4;
            for (const auto &[name, value] : prog.symbols)
                if (value == addr)
                    std::printf("%s:\n", name.c_str());
            std::printf("  %06x:  %08x  %s\n", addr, prog.text[i],
                        isa::disassembleWord(prog.text[i]).c_str());
        }
        return 0;
    }

    // Tracing to a file without an explicit category list records all.
    if (!obs.traceOut.empty() && obs.traceCats == 0)
        obs.traceCats = kTraceAll;
    // Profiling to a file without an explicit period samples densely.
    if (!obs.profOut.empty() && obs.profInterval == 0)
        obs.profInterval = 512;
    ChipConfig chipCfg;
    chipCfg.obs = obs;
    chipCfg.fault = faultCfg;
    chipCfg.engine = engineCfg;
    // A bad configuration (fault map out of range, no surviving cache,
    // ...) is a user error: report it structurally, don't abort.
    if (const std::string err = chipCfg.check(); !err.empty())
        argError(argv[0], err);

    // Stop gracefully on ^C / kill / wall-clock timeout: the run loop
    // returns at its next service point and all state gets flushed.
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);
    if (timeoutSeconds != 0) {
        std::signal(SIGALRM, stopHandler);
        alarm(u32(timeoutSeconds));
    }

    arch::Chip chip(chipCfg);
    kernel::Kernel kern(chip, balanced ? kernel::AllocPolicy::Balanced
                                       : kernel::AllocPolicy::Sequential);
    kern.load(prog);
    if (threads > kern.usableThreads())
        argError(argv[0],
                 strprintf("-t %u exceeds the %u usable threads",
                           threads, kern.usableThreads()));
    kern.spawn(threads, prog.entry);

    arch::RunExit exit;
    try {
        exit = kern.run(maxCycles);
    } catch (const GuestError &err) {
        std::fputs(chip.console().c_str(), stdout);
        std::fprintf(stderr, "\n[guest %s at cycle %llu: %s]\n",
                     err.kind() == GuestError::Kind::Check ? "fault"
                                                           : "crash",
                     static_cast<unsigned long long>(chip.now()),
                     err.what());
        return 1;
    }
    chip.writeObservability();
    std::fputs(chip.console().c_str(), stdout);

    if (!manifestPath.empty()) {
        RunManifest m;
        m.tool = "cyclops-run";
        m.workload = path;
        m.config = &chipCfg;
        m.simCycles = chip.now();
        m.instructions = chip.totalInstructions();
        m.wallSeconds = double(hostNowNs() - startNs) / 1e9;
        m.exitReason = arch::runExitName(exit.reason);
        writeRunManifest(obs.expandPath(manifestPath), m);
    }

    switch (exit.reason) {
      case arch::RunExitReason::CycleLimit:
        std::fprintf(stderr, "\n[cycle limit %llu reached]\n",
                     static_cast<unsigned long long>(maxCycles));
        return 3;
      case arch::RunExitReason::Watchdog:
        std::fprintf(stderr, "\n[deadlock watchdog]\n%s",
                     exit.diagnostic.c_str());
        return 4;
      case arch::RunExitReason::Signal:
        std::fprintf(stderr,
                     "\n[stopped by %s at cycle %llu; state flushed]\n",
                     exit.signal == SIGALRM
                         ? "wall-clock timeout"
                         : exit.signal == SIGINT ? "SIGINT" : "SIGTERM",
                     static_cast<unsigned long long>(exit.at));
        return 128 + exit.signal;
      case arch::RunExitReason::AllHalted:
        break;
    }

    std::fprintf(stderr,
                 "\n[%llu cycles, %llu instructions, %u threads; "
                 "run %llu / stall %llu]\n",
                 static_cast<unsigned long long>(chip.now()),
                 static_cast<unsigned long long>(
                     chip.totalInstructions()),
                 threads,
                 static_cast<unsigned long long>(chip.totalRunCycles()),
                 static_cast<unsigned long long>(
                     chip.totalStallCycles()));
    if (dumpStats)
        std::fputs(chip.stats().dump().c_str(), stderr);
    return 0;
}
