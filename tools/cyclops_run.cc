/**
 * @file
 * cyclops-run: assemble a Cyclops assembly file and execute it on a
 * simulated chip.
 *
 *   cyclops-run prog.s                 run on 1 thread
 *   cyclops-run -t 64 prog.s           spawn 64 software threads
 *   cyclops-run -t 8 --balanced prog.s balanced thread allocation
 *   cyclops-run --stats prog.s         dump every statistic at exit
 *   cyclops-run --disasm prog.s        print the assembled code, don't run
 *
 * Observability (DESIGN.md section 10):
 *   --stats-json out.json    end-of-run counters/histograms as JSON
 *   --stats-csv out.csv      epoch-sampled counter time-series as CSV
 *   --stats-interval N       sample period in cycles (enables the series)
 *   --trace-out trace.json   Chrome-trace events (load in Perfetto)
 *   --trace-cats LIST        mem,cache,barrier,kernel,sched or "all"
 *   --trace-capacity N       tracer ring size in events
 *   --prof-out base          PC-sampling profile: base (JSON report),
 *                            base.folded (flamegraph folded stacks),
 *                            base.heatmap.csv (bank heatmap)
 *   --prof-interval N        sample period in cycles (default 512
 *                            when --prof-out is given)
 *
 * Threads start at the `start` label (or address 0) with the kernel's
 * register conventions: r1 = stack pointer, r4 = software thread
 * index, r5 = thread count. Console output (traps) goes to stdout.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/chip.h"
#include "common/config.h"
#include "common/log.h"
#include "common/trace.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "kernel/kernel.h"

using namespace cyclops;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [-t N] [--balanced] [--stats] [--disasm] "
                 "[--max-cycles N]\n"
                 "       [--stats-json P] [--stats-csv P] "
                 "[--stats-interval N]\n"
                 "       [--trace-out P] [--trace-cats LIST] "
                 "[--trace-capacity N]\n"
                 "       [--prof-out P] [--prof-interval N] prog.s\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    u32 threads = 1;
    bool balanced = false;
    bool dumpStats = false;
    bool disasmOnly = false;
    u64 maxCycles = 1'000'000'000ull;
    ObsConfig obs;
    const char *path = nullptr;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
            threads = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--balanced") == 0) {
            balanced = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            dumpStats = true;
        } else if (std::strcmp(argv[i], "--disasm") == 0) {
            disasmOnly = true;
        } else if (std::strcmp(argv[i], "--max-cycles") == 0 &&
                   i + 1 < argc) {
            maxCycles = u64(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--stats-json") == 0 &&
                   i + 1 < argc) {
            obs.statsJson = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-csv") == 0 &&
                   i + 1 < argc) {
            obs.statsCsv = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-interval") == 0 &&
                   i + 1 < argc) {
            obs.statsInterval = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            obs.traceOut = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-cats") == 0 &&
                   i + 1 < argc) {
            obs.traceCats = parseTraceCats(argv[++i]);
        } else if (std::strcmp(argv[i], "--trace-capacity") == 0 &&
                   i + 1 < argc) {
            obs.traceCapacity = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--prof-out") == 0 &&
                   i + 1 < argc) {
            obs.profOut = argv[++i];
        } else if (std::strcmp(argv[i], "--prof-interval") == 0 &&
                   i + 1 < argc) {
            obs.profInterval = u32(std::atoi(argv[++i]));
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
        } else if (path) {
            usage(argv[0]);
        } else {
            path = argv[i];
        }
    }
    if (!path || threads == 0)
        usage(argv[0]);

    std::ifstream in(path);
    if (!in)
        fatal("cannot open %s", path);
    std::stringstream buffer;
    buffer << in.rdbuf();

    isa::AsmResult result = isa::assemble(buffer.str());
    if (!result.ok)
        fatal("%s: %s", path, result.error.c_str());
    const isa::Program &prog = result.program;

    if (disasmOnly) {
        for (size_t i = 0; i < prog.text.size(); ++i) {
            const u32 addr = prog.textBase + u32(i) * 4;
            for (const auto &[name, value] : prog.symbols)
                if (value == addr)
                    std::printf("%s:\n", name.c_str());
            std::printf("  %06x:  %08x  %s\n", addr, prog.text[i],
                        isa::disassembleWord(prog.text[i]).c_str());
        }
        return 0;
    }

    // Tracing to a file without an explicit category list records all.
    if (!obs.traceOut.empty() && obs.traceCats == 0)
        obs.traceCats = kTraceAll;
    // Profiling to a file without an explicit period samples densely.
    if (!obs.profOut.empty() && obs.profInterval == 0)
        obs.profInterval = 512;
    ChipConfig chipCfg;
    chipCfg.obs = obs;
    arch::Chip chip(chipCfg);
    kernel::Kernel kern(chip, balanced ? kernel::AllocPolicy::Balanced
                                       : kernel::AllocPolicy::Sequential);
    kern.load(prog);
    if (threads > kern.usableThreads())
        fatal("-t %u exceeds the %u usable threads", threads,
              kern.usableThreads());
    kern.spawn(threads, prog.entry);

    const arch::RunExit exit = kern.run(maxCycles);
    chip.writeObservability();
    std::fputs(chip.console().c_str(), stdout);
    if (exit == arch::RunExit::CycleLimit) {
        std::fprintf(stderr, "\n[cycle limit %llu reached]\n",
                     static_cast<unsigned long long>(maxCycles));
        return 3;
    }

    std::fprintf(stderr,
                 "\n[%llu cycles, %llu instructions, %u threads; "
                 "run %llu / stall %llu]\n",
                 static_cast<unsigned long long>(chip.now()),
                 static_cast<unsigned long long>(
                     chip.totalInstructions()),
                 threads,
                 static_cast<unsigned long long>(chip.totalRunCycles()),
                 static_cast<unsigned long long>(
                     chip.totalStallCycles()));
    if (dumpStats)
        std::fputs(chip.stats().dump().c_str(), stderr);
    return 0;
}
