/**
 * @file
 * cyclops-run: assemble a Cyclops assembly file and execute it on a
 * simulated chip.
 *
 *   cyclops-run prog.s                 run on 1 thread
 *   cyclops-run -t 64 prog.s           spawn 64 software threads
 *   cyclops-run -t 8 --balanced prog.s balanced thread allocation
 *   cyclops-run --stats prog.s         dump every statistic at exit
 *   cyclops-run --disasm prog.s        print the assembled code, don't run
 *
 * Multi-chip systems (DESIGN.md section 16):
 *   --chips X,Y,Z      run an X x Y x Z torus of chips on the
 *                      cycle-driven fabric; the program is SPMD (the
 *                      same image boots on every chip, -t threads
 *                      each; SPRs 6/7 = chip id / chip count)
 *   --mesh             mesh links instead of torus wraparound
 *
 * Degraded chips and robustness (DESIGN.md section 13):
 *   --disable-tu N     fuse off one thread unit       (repeatable)
 *   --disable-quad N   fuse off a quad: TUs+FPU+cache (repeatable)
 *   --disable-fpu N    fuse off one quad's FPU        (repeatable)
 *   --disable-dcache N fuse off one data cache        (repeatable)
 *   --disable-icache N fuse off one I-cache           (repeatable)
 *   --disable-bank N   fail one memory bank           (repeatable)
 *   --cache-ways N     live ways per D-cache set (0 = all)
 *   --watchdog N       deadlock watchdog window in cycles (0 = off)
 *   --timeout-seconds N  wall-clock limit (graceful stop via SIGALRM)
 *
 * Fabric link faults (DESIGN.md section 18; need --chips; chips are
 * ids in the X,Y,Z grid, x fastest):
 *   --disable-link A->B    kill the directed link chip A -> chip B;
 *                          routing detours around it (repeatable)
 *   --link-flaky A->B=PPM  corrupt packets on the link with
 *                          probability PPM/1e6; the end-to-end
 *                          checksum catches and retransmits
 *   --link-derate A->B=N   divide the link bandwidth by N
 *   --fabric-fault-seed N  corruption-draw stream selector (the run
 *                          is byte-reproducible for a given seed)
 *   --fabric-fault-at N    apply the fault map mid-run at cycle N
 *                          (default 0: degraded from the first cycle)
 *
 * Engine selection (DESIGN.md section 14; same results, faster host):
 *   --engine serial|sharded  cycle engine (default serial)
 *   --engine-workers N       sharded-engine host workers (0 = auto)
 *   --engine-sampled         fast-functional + sampled-timing mode
 *   --sample-period N        sampling period in cycles
 *   --sample-detail N        detailed-window length in cycles
 *
 * Observability (DESIGN.md section 10):
 *   --stats-json out.json    end-of-run counters/histograms as JSON
 *   --stats-csv out.csv      epoch-sampled counter time-series as CSV
 *   --stats-interval N       sample period in cycles (enables the series)
 *   --trace-out trace.json   Chrome-trace events (load in Perfetto);
 *                            with --chips, the fabric appears as its
 *                            own process with per-link tracks
 *   --trace-cats LIST        mem,cache,barrier,kernel,sched,host,net
 *                            or "all"
 *   --trace-capacity N       tracer ring size in events
 *   --fabric-stats out.json  fabric stats JSON (needs --chips; schema
 *                            cyclops-fabric-v1, per-link counters,
 *                            latency histograms, chip-pair matrix —
 *                            validated by tools/check_fabric.py)
 *   --fabric-heatmap out.csv link/pair congestion heatmap CSV (needs
 *                            --chips; DESIGN.md section 17)
 *   --prof-out base          PC-sampling profile: base (JSON report),
 *                            base.folded (flamegraph folded stacks),
 *                            base.heatmap.csv (bank heatmap)
 *   --prof-interval N        sample period in cycles (default 512
 *                            when --prof-out is given)
 *   --host-obs               host-side simulator telemetry: hostObs
 *                            section in --stats-json, host process in
 *                            --trace-out (DESIGN.md section 15)
 *   --manifest out.json      per-run manifest (config hash, engine,
 *                            git describe, headline counters) for
 *                            tools/check_regress.py
 *
 * Threads start at the `start` label (or address 0) with the kernel's
 * register conventions: r1 = stack pointer, r4 = software thread
 * index, r5 = thread count. Console output (traps) goes to stdout.
 *
 * Exit status: 0 success, 1 guest fault or host error, 2 usage or
 * configuration error, 3 cycle limit, 4 deadlock watchdog, 5 fabric
 * failure (a remote access was abandoned: the fault map partitions
 * the system or a retry storm exhausted the bounded retries),
 * 128+signal on SIGINT/SIGTERM/timeout (state flushed first).
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "arch/chip.h"
#include "arch/system.h"
#include "common/config.h"
#include "common/hostobs.h"
#include "common/log.h"
#include "common/trace.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "kernel/kernel.h"

using namespace cyclops;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [-t N] [--balanced] [--stats] [--disasm] "
                 "[--max-cycles N]\n"
                 "       [--disable-tu N] [--disable-quad N] "
                 "[--disable-fpu N]\n"
                 "       [--disable-dcache N] [--disable-icache N] "
                 "[--disable-bank N]\n"
                 "       [--cache-ways N] [--watchdog N] "
                 "[--timeout-seconds N]\n"
                 "       [--engine serial|sharded] [--engine-workers N]\n"
                 "       [--engine-sampled] [--sample-period N] "
                 "[--sample-detail N]\n"
                 "       [--stats-json P] [--stats-csv P] "
                 "[--stats-interval N]\n"
                 "       [--trace-out P] [--trace-cats LIST] "
                 "[--trace-capacity N]\n"
                 "       [--prof-out P] [--prof-interval N]\n"
                 "       [--fabric-stats P] [--fabric-heatmap P]\n"
                 "       [--host-obs] [--manifest P]\n"
                 "       [--disable-link A->B] [--link-flaky A->B=PPM]\n"
                 "       [--link-derate A->B=N] [--fabric-fault-seed N]\n"
                 "       [--fabric-fault-at N]\n"
                 "       [--chips X,Y,Z] [--mesh] prog.s\n",
                 argv0);
}

/**
 * Report a malformed command line and exit 2. CLI mistakes are user
 * errors with structured messages, never fatal()/abort paths.
 */
[[noreturn]] void
argError(const char *argv0, const std::string &why)
{
    std::fprintf(stderr, "%s: %s\n", argv0, why.c_str());
    usage(argv0);
    std::exit(2);
}

/** Parse a whole-string nonnegative integer; false on malformed input. */
bool
parseU64(const char *text, u64 *out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr)
        return false;
    *out = v;
    return true;
}

/** Parse a directed link "A->B"; false if malformed. */
bool
parseLink(const char *text, u32 *src, u32 *dst)
{
    unsigned a = 0, b = 0;
    char tail = 0;
    if (std::sscanf(text, "%u->%u%c", &a, &b, &tail) != 2)
        return false;
    *src = u32(a);
    *dst = u32(b);
    return true;
}

/** Parse a valued directed link "A->B=N"; false if malformed. */
bool
parseLinkValue(const char *text, u32 *src, u32 *dst, u32 *value)
{
    unsigned a = 0, b = 0, v = 0;
    char tail = 0;
    if (std::sscanf(text, "%u->%u=%u%c", &a, &b, &v, &tail) != 3)
        return false;
    *src = u32(a);
    *dst = u32(b);
    *value = u32(v);
    return true;
}

/** Parse "X,Y,Z" (or "XxYxZ") system dimensions; false if malformed. */
bool
parseDims(const char *text, u32 dims[3])
{
    unsigned x = 0, y = 0, z = 0;
    char sep1 = 0, sep2 = 0, tail = 0;
    const int n = std::sscanf(text, "%u%c%u%c%u%c", &x, &sep1, &y,
                              &sep2, &z, &tail);
    if (n != 5 || (sep1 != ',' && sep1 != 'x') || sep2 != sep1)
        return false;
    if (x == 0 || y == 0 || z == 0)
        return false;
    dims[0] = u32(x);
    dims[1] = u32(y);
    dims[2] = u32(z);
    return true;
}

void
stopHandler(int sig)
{
    arch::requestRunStop(sig);
}

/**
 * Multi-chip run (--chips): the same SPMD image is booted and spawned
 * on every chip of the torus/mesh, then the whole system advances in
 * fabric lockstep (DESIGN.md section 16). Console output is printed
 * per chip; the summary and manifest report system-wide sums plus the
 * fabric traffic counters.
 */
int
runSystem(const char *argv0, const isa::Program &prog, const char *path,
          const arch::SystemConfig &sysCfg, u32 threads, bool balanced,
          bool dumpStats, u64 maxCycles, const std::string &manifestPath,
          u64 startNs)
{
    arch::System sys(sysCfg);
    std::vector<std::unique_ptr<kernel::Kernel>> kernels;
    for (u32 c = 0; c < sys.numChips(); ++c) {
        auto kern = std::make_unique<kernel::Kernel>(
            sys.chip(c), balanced ? kernel::AllocPolicy::Balanced
                                  : kernel::AllocPolicy::Sequential);
        kern->load(prog);
        if (threads > kern->usableThreads())
            argError(argv0,
                     strprintf("-t %u exceeds the %u usable threads",
                               threads, kern->usableThreads()));
        kern->spawn(threads, prog.entry);
        kernels.push_back(std::move(kern));
    }

    const auto flushConsoles = [&sys] {
        for (u32 c = 0; c < sys.numChips(); ++c) {
            const std::string &text = sys.chip(c).console();
            if (text.empty())
                continue;
            std::printf("[chip %u]\n", c);
            std::fputs(text.c_str(), stdout);
        }
    };

    arch::RunExit exit;
    try {
        exit = sys.run(maxCycles);
    } catch (const GuestError &err) {
        flushConsoles();
        std::fprintf(stderr, "\n[guest %s at cycle %llu: %s]\n",
                     err.kind() == GuestError::Kind::Check ? "fault"
                                                           : "crash",
                     static_cast<unsigned long long>(sys.now()),
                     err.what());
        return 1;
    }
    sys.writeObservability();
    flushConsoles();

    if (!manifestPath.empty()) {
        RunManifest m;
        m.tool = "cyclops-run";
        m.workload = path;
        m.config = &sysCfg.chip;
        m.simCycles = sys.now();
        m.instructions = sys.totalInstructions();
        m.wallSeconds = double(hostNowNs() - startNs) / 1e9;
        m.exitReason = arch::runExitName(exit.reason);
        writeRunManifest(sysCfg.chip.obs.expandPath(manifestPath), m);
    }

    switch (exit.reason) {
      case arch::RunExitReason::CycleLimit:
        std::fprintf(stderr, "\n[cycle limit %llu reached]\n",
                     static_cast<unsigned long long>(maxCycles));
        return 3;
      case arch::RunExitReason::Watchdog:
        std::fprintf(stderr, "\n[deadlock watchdog]\n%s",
                     exit.diagnostic.c_str());
        return 4;
      case arch::RunExitReason::Signal:
        std::fprintf(stderr,
                     "\n[stopped by %s at cycle %llu; state flushed]\n",
                     exit.signal == SIGALRM
                         ? "wall-clock timeout"
                         : exit.signal == SIGINT ? "SIGINT" : "SIGTERM",
                     static_cast<unsigned long long>(exit.at));
        return 128 + exit.signal;
      case arch::RunExitReason::FabricFailure:
        std::fprintf(stderr, "\n[fabric failure]\n%s\n",
                     exit.diagnostic.c_str());
        return 5;
      case arch::RunExitReason::AllHalted:
        break;
    }

    const net::Fabric &fabric = sys.fabric();
    std::fprintf(
        stderr,
        "\n[%llu cycles, %llu instructions, %u chips x %u threads; "
        "fabric %llu messages, %llu bytes, %llu queue cycles]\n",
        static_cast<unsigned long long>(sys.now()),
        static_cast<unsigned long long>(sys.totalInstructions()),
        sys.numChips(), threads,
        static_cast<unsigned long long>(fabric.messages()),
        static_cast<unsigned long long>(fabric.bytesMoved()),
        static_cast<unsigned long long>(fabric.queueCycles()));
    if (fabric.faultsActive())
        std::fprintf(
            stderr,
            "[fabric faults: %llu rerouted, %llu retransmits, "
            "%llu crc errors, %llu dropped flits]\n",
            static_cast<unsigned long long>(fabric.rerouted()),
            static_cast<unsigned long long>(fabric.retransmits()),
            static_cast<unsigned long long>(fabric.crcErrors()),
            static_cast<unsigned long long>(fabric.flitsDropped()));
    if (dumpStats)
        for (u32 c = 0; c < sys.numChips(); ++c) {
            std::fprintf(stderr, "--- chip %u ---\n", c);
            std::fputs(sys.chip(c).stats().dump().c_str(), stderr);
        }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    u32 threads = 1;
    bool balanced = false;
    bool dumpStats = false;
    bool disasmOnly = false;
    u64 maxCycles = 1'000'000'000ull;
    u64 timeoutSeconds = 0;
    ObsConfig obs;
    FaultConfig faultCfg;
    EngineConfig engineCfg;
    std::string manifestPath;
    u32 chipDims[3] = {0, 0, 0};
    bool mesh = false;
    net::FabricFaultMap faultMap;
    const char *path = nullptr;
    const u64 startNs = hostNowNs();

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        // Flags taking one numeric operand share checked parsing.
        auto num = [&]() -> u64 {
            if (i + 1 >= argc)
                argError(argv[0],
                         strprintf("%s needs a numeric argument", arg));
            u64 v = 0;
            if (!parseU64(argv[++i], &v))
                argError(argv[0],
                         strprintf("%s: '%s' is not a nonnegative "
                                   "number", arg, argv[i]));
            return v;
        };
        if (std::strcmp(arg, "-t") == 0) {
            threads = u32(num());
        } else if (std::strcmp(arg, "--balanced") == 0) {
            balanced = true;
        } else if (std::strcmp(arg, "--stats") == 0) {
            dumpStats = true;
        } else if (std::strcmp(arg, "--disasm") == 0) {
            disasmOnly = true;
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            maxCycles = num();
        } else if (std::strcmp(arg, "--disable-tu") == 0) {
            faultCfg.disabledTus.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-quad") == 0) {
            faultCfg.disabledQuads.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-fpu") == 0) {
            faultCfg.disabledFpus.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-dcache") == 0) {
            faultCfg.disabledDcaches.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-icache") == 0) {
            faultCfg.disabledIcaches.push_back(u32(num()));
        } else if (std::strcmp(arg, "--disable-bank") == 0) {
            faultCfg.disabledBanks.push_back(u32(num()));
        } else if (std::strcmp(arg, "--cache-ways") == 0) {
            faultCfg.cacheWays = u32(num());
        } else if (std::strcmp(arg, "--watchdog") == 0) {
            faultCfg.watchdogCycles = num();
        } else if (std::strcmp(arg, "--timeout-seconds") == 0) {
            timeoutSeconds = num();
        } else if (std::strcmp(arg, "--engine") == 0 && i + 1 < argc) {
            if (!parseEngineKind(argv[++i], &engineCfg.kind))
                argError(argv[0],
                         strprintf("--engine: unknown engine '%s' "
                                   "(serial, sharded)", argv[i]));
        } else if (std::strcmp(arg, "--engine-workers") == 0) {
            engineCfg.workers = u32(num());
        } else if (std::strcmp(arg, "--engine-sampled") == 0) {
            engineCfg.sampled = true;
        } else if (std::strcmp(arg, "--sample-period") == 0) {
            engineCfg.samplePeriod = u32(num());
        } else if (std::strcmp(arg, "--sample-detail") == 0) {
            engineCfg.sampleDetail = u32(num());
        } else if (std::strcmp(arg, "--stats-json") == 0 &&
                   i + 1 < argc) {
            obs.statsJson = argv[++i];
        } else if (std::strcmp(arg, "--stats-csv") == 0 && i + 1 < argc) {
            obs.statsCsv = argv[++i];
        } else if (std::strcmp(arg, "--stats-interval") == 0) {
            obs.statsInterval = u32(num());
        } else if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
            obs.traceOut = argv[++i];
        } else if (std::strcmp(arg, "--trace-cats") == 0 &&
                   i + 1 < argc) {
            obs.traceCats = parseTraceCats(argv[++i]);
        } else if (std::strcmp(arg, "--trace-capacity") == 0) {
            obs.traceCapacity = u32(num());
        } else if (std::strcmp(arg, "--prof-out") == 0 && i + 1 < argc) {
            obs.profOut = argv[++i];
        } else if (std::strcmp(arg, "--prof-interval") == 0) {
            obs.profInterval = u32(num());
        } else if (std::strcmp(arg, "--fabric-stats") == 0 &&
                   i + 1 < argc) {
            obs.fabricStats = argv[++i];
        } else if (std::strcmp(arg, "--fabric-heatmap") == 0 &&
                   i + 1 < argc) {
            obs.fabricHeatmap = argv[++i];
        } else if (std::strcmp(arg, "--host-obs") == 0) {
            obs.hostObs = true;
        } else if (std::strcmp(arg, "--manifest") == 0 && i + 1 < argc) {
            manifestPath = argv[++i];
        } else if (std::strcmp(arg, "--disable-link") == 0 &&
                   i + 1 < argc) {
            net::LinkFault lf;
            if (!parseLink(argv[++i], &lf.src, &lf.dst))
                argError(argv[0],
                         strprintf("--disable-link: '%s' is not "
                                   "SRC->DST", argv[i]));
            faultMap.links.push_back(lf);
        } else if (std::strcmp(arg, "--link-flaky") == 0 &&
                   i + 1 < argc) {
            net::LinkFault lf;
            lf.kind = net::LinkFaultKind::Flaky;
            if (!parseLinkValue(argv[++i], &lf.src, &lf.dst,
                                &lf.flakyPpm))
                argError(argv[0],
                         strprintf("--link-flaky: '%s' is not "
                                   "SRC->DST=PPM", argv[i]));
            faultMap.links.push_back(lf);
        } else if (std::strcmp(arg, "--link-derate") == 0 &&
                   i + 1 < argc) {
            net::LinkFault lf;
            lf.kind = net::LinkFaultKind::Derated;
            if (!parseLinkValue(argv[++i], &lf.src, &lf.dst,
                                &lf.derate))
                argError(argv[0],
                         strprintf("--link-derate: '%s' is not "
                                   "SRC->DST=N", argv[i]));
            faultMap.links.push_back(lf);
        } else if (std::strcmp(arg, "--fabric-fault-seed") == 0) {
            faultMap.seed = num();
        } else if (std::strcmp(arg, "--fabric-fault-at") == 0) {
            faultMap.atCycle = num();
        } else if (std::strcmp(arg, "--chips") == 0 && i + 1 < argc) {
            if (!parseDims(argv[++i], chipDims))
                argError(argv[0],
                         strprintf("--chips: '%s' is not X,Y,Z with "
                                   "nonzero dimensions", argv[i]));
        } else if (std::strcmp(arg, "--mesh") == 0) {
            mesh = true;
        } else if (arg[0] == '-') {
            argError(argv[0], strprintf("unknown argument '%s'", arg));
        } else if (path) {
            argError(argv[0], "more than one program file");
        } else {
            path = arg;
        }
    }
    if (!path)
        argError(argv[0], "no program file");
    if (threads == 0)
        argError(argv[0], "-t must be nonzero");
    if (mesh && chipDims[0] == 0)
        argError(argv[0], "--mesh needs --chips X,Y,Z");
    if (chipDims[0] == 0 &&
        (!obs.fabricStats.empty() || !obs.fabricHeatmap.empty()))
        argError(argv[0],
                 "--fabric-stats/--fabric-heatmap need --chips X,Y,Z");
    if (chipDims[0] == 0 && !faultMap.empty())
        argError(argv[0],
                 "--disable-link/--link-flaky/--link-derate need "
                 "--chips X,Y,Z");

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open %s\n", argv[0], path);
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    isa::AsmResult result = isa::assemble(buffer.str());
    if (!result.ok) {
        std::fprintf(stderr, "%s: %s: %s\n", argv[0], path,
                     result.error.c_str());
        return 1;
    }
    const isa::Program &prog = result.program;

    if (disasmOnly) {
        for (size_t i = 0; i < prog.text.size(); ++i) {
            const u32 addr = prog.textBase + u32(i) * 4;
            for (const auto &[name, value] : prog.symbols)
                if (value == addr)
                    std::printf("%s:\n", name.c_str());
            std::printf("  %06x:  %08x  %s\n", addr, prog.text[i],
                        isa::disassembleWord(prog.text[i]).c_str());
        }
        return 0;
    }

    // Tracing to a file without an explicit category list records all.
    if (!obs.traceOut.empty() && obs.traceCats == 0)
        obs.traceCats = kTraceAll;
    // Profiling to a file without an explicit period samples densely.
    if (!obs.profOut.empty() && obs.profInterval == 0)
        obs.profInterval = 512;
    ChipConfig chipCfg;
    chipCfg.obs = obs;
    chipCfg.fault = faultCfg;
    chipCfg.engine = engineCfg;
    // A bad configuration (fault map out of range, no surviving cache,
    // ...) is a user error: report it structurally, don't abort.
    if (const std::string err = chipCfg.check(); !err.empty())
        argError(argv[0], err);

    // Stop gracefully on ^C / kill / wall-clock timeout: the run loop
    // returns at its next service point and all state gets flushed.
    std::signal(SIGINT, stopHandler);
    std::signal(SIGTERM, stopHandler);
    if (timeoutSeconds != 0) {
        std::signal(SIGALRM, stopHandler);
        alarm(u32(timeoutSeconds));
    }

    if (chipDims[0] != 0) {
        arch::SystemConfig sysCfg;
        sysCfg.chip = chipCfg;
        sysCfg.fabric.net.dimX = chipDims[0];
        sysCfg.fabric.net.dimY = chipDims[1];
        sysCfg.fabric.net.dimZ = chipDims[2];
        sysCfg.fabric.net.torus = !mesh;
        sysCfg.fabric.faults = faultMap;
        if (const std::string err = sysCfg.check(); !err.empty())
            argError(argv[0], err);
        return runSystem(argv[0], prog, path, sysCfg, threads, balanced,
                         dumpStats, maxCycles, manifestPath, startNs);
    }

    arch::Chip chip(chipCfg);
    kernel::Kernel kern(chip, balanced ? kernel::AllocPolicy::Balanced
                                       : kernel::AllocPolicy::Sequential);
    kern.load(prog);
    if (threads > kern.usableThreads())
        argError(argv[0],
                 strprintf("-t %u exceeds the %u usable threads",
                           threads, kern.usableThreads()));
    kern.spawn(threads, prog.entry);

    arch::RunExit exit;
    try {
        exit = kern.run(maxCycles);
    } catch (const GuestError &err) {
        std::fputs(chip.console().c_str(), stdout);
        std::fprintf(stderr, "\n[guest %s at cycle %llu: %s]\n",
                     err.kind() == GuestError::Kind::Check ? "fault"
                                                           : "crash",
                     static_cast<unsigned long long>(chip.now()),
                     err.what());
        return 1;
    }
    chip.writeObservability();
    std::fputs(chip.console().c_str(), stdout);

    if (!manifestPath.empty()) {
        RunManifest m;
        m.tool = "cyclops-run";
        m.workload = path;
        m.config = &chipCfg;
        m.simCycles = chip.now();
        m.instructions = chip.totalInstructions();
        m.wallSeconds = double(hostNowNs() - startNs) / 1e9;
        m.exitReason = arch::runExitName(exit.reason);
        writeRunManifest(obs.expandPath(manifestPath), m);
    }

    switch (exit.reason) {
      case arch::RunExitReason::CycleLimit:
        std::fprintf(stderr, "\n[cycle limit %llu reached]\n",
                     static_cast<unsigned long long>(maxCycles));
        return 3;
      case arch::RunExitReason::Watchdog:
        std::fprintf(stderr, "\n[deadlock watchdog]\n%s",
                     exit.diagnostic.c_str());
        return 4;
      case arch::RunExitReason::Signal:
        std::fprintf(stderr,
                     "\n[stopped by %s at cycle %llu; state flushed]\n",
                     exit.signal == SIGALRM
                         ? "wall-clock timeout"
                         : exit.signal == SIGINT ? "SIGINT" : "SIGTERM",
                     static_cast<unsigned long long>(exit.at));
        return 128 + exit.signal;
      case arch::RunExitReason::FabricFailure: // no fabric on one chip
      case arch::RunExitReason::AllHalted:
        break;
    }

    std::fprintf(stderr,
                 "\n[%llu cycles, %llu instructions, %u threads; "
                 "run %llu / stall %llu]\n",
                 static_cast<unsigned long long>(chip.now()),
                 static_cast<unsigned long long>(
                     chip.totalInstructions()),
                 threads,
                 static_cast<unsigned long long>(chip.totalRunCycles()),
                 static_cast<unsigned long long>(
                     chip.totalStallCycles()));
    if (dumpStats)
        std::fputs(chip.stats().dump().c_str(), stderr);
    return 0;
}
