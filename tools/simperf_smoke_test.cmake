# CTest script: run the host-throughput benchmark in quick mode and
# validate BENCH_simperf.json — schema, sharded-engine determinism
# (simulated cycles identical to serial at every worker count) and the
# sampled-engine error bound — with check_simperf.py. Speedup floors
# apply only on hosts with enough cores (see the checker).
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
    COMMAND ${RUNNER} --quick --jobs 2
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_simperf failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

# Sanitizer builds instrument the sampler's allocations and gauge
# closures far more heavily than the simulation loop, so the fabric
# wall-clock gate is relaxed there — determinism (simCyclesDrift == 0)
# still holds absolutely.
set(fabric_gate 10)
if(SANITIZED)
    set(fabric_gate 30)
endif()
execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${WORK_DIR}/BENCH_simperf.json
        --max-fabric-overhead ${fabric_gate}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_simperf.py failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
