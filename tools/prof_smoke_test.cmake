# CTest script: run cyclops-run with the PC-sampling profiler enabled
# twice, require byte-identical outputs (the profiler must be
# deterministic), and validate all three files with check_prof.py.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(run a b)
    execute_process(
        COMMAND ${RUNNER} -t 4
            --prof-out ${WORK_DIR}/prof_${run}.json --prof-interval 16
            ${PROGRAM}
        RESULT_VARIABLE run_rc
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR
            "cyclops-run failed (${run_rc}):\n${run_out}\n${run_err}")
    endif()
endforeach()

foreach(suffix "" ".folded" ".heatmap.csv")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/prof_a.json${suffix}
            ${WORK_DIR}/prof_b.json${suffix}
        RESULT_VARIABLE same_rc)
    if(NOT same_rc EQUAL 0)
        message(FATAL_ERROR
            "profiler output prof.json${suffix} differs between two "
            "identical runs (nondeterministic profiler)")
    endif()
endforeach()

execute_process(
    COMMAND ${PYTHON} ${CHECKER}
        --validate ${WORK_DIR}/prof_a.json
        --report ${WORK_DIR}/prof_a.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_prof.py failed (${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
