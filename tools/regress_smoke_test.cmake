# CTest script: exercise the perf-regression tracker end to end. Two
# back-to-back quick bench_simperf runs stand in for "baseline" and
# "current"; check_regress.py compares their reports and their run
# manifests. The tolerance is deliberately generous (60%, on top of
# the checker's CoV widening) — this smoke validates the plumbing and
# the comparison logic, not the host's wall-clock stability; the CI
# host may be a single loaded core.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/baseline ${WORK_DIR}/current)

foreach(leg baseline current)
    execute_process(
        COMMAND ${RUNNER} --quick --jobs 2
            --manifest ${WORK_DIR}/${leg}/manifest.json
        WORKING_DIRECTORY ${WORK_DIR}/${leg}
        RESULT_VARIABLE run_rc
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR
            "bench_simperf (${leg}) failed (${run_rc}):\n"
            "${run_out}\n${run_err}")
    endif()
endforeach()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} --tolerance-pct 60
        ${WORK_DIR}/baseline/BENCH_simperf.json
        ${WORK_DIR}/current/BENCH_simperf.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_regress.py (reports) failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

execute_process(
    COMMAND ${PYTHON} ${CHECKER} --tolerance-pct 60
        ${WORK_DIR}/baseline/manifest.json
        ${WORK_DIR}/current/manifest.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_regress.py (manifests) failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

# A fabricated 10x slowdown must be caught: rewrite the current
# report's throughput numbers and require the checker to exit 1.
file(READ ${WORK_DIR}/current/BENCH_simperf.json report_text)
string(REGEX REPLACE "\"mips\": [0-9.]+" "\"mips\": 0.0001"
    report_text "${report_text}")
string(REGEX REPLACE "\"cyclesPerSec\": [0-9.]+" "\"cyclesPerSec\": 1"
    report_text "${report_text}")
file(WRITE ${WORK_DIR}/current/slow.json "${report_text}")
execute_process(
    COMMAND ${PYTHON} ${CHECKER} --tolerance-pct 60
        ${WORK_DIR}/baseline/BENCH_simperf.json
        ${WORK_DIR}/current/slow.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_regress.py missed a fabricated 10x regression:\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "fabricated regression correctly rejected")
