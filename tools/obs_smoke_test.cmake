# CTest script: run cyclops-run with all observability exports on and
# validate the produced trace JSON, stats JSON and epoch CSV.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
    COMMAND ${RUNNER} -t 4
        --trace-out ${WORK_DIR}/trace.json --trace-cats all
        --stats-json ${WORK_DIR}/stats.json
        --stats-csv ${WORK_DIR}/series.csv --stats-interval 100
        ${PROGRAM}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-run failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER}
        --trace ${WORK_DIR}/trace.json
        --stats ${WORK_DIR}/stats.json
        --csv ${WORK_DIR}/series.csv
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_trace.py failed (${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

# Second run under the sharded engine with host telemetry on: the
# trace must gain the pid-2 cyclops-host process (validated by
# --expect-host) next to the guest timelines, and the stats JSON the
# host.* gauges; the run manifest must round-trip as valid JSON too.
execute_process(
    COMMAND ${RUNNER} -t 8 --host-obs
        --engine sharded --engine-workers 2
        --trace-out ${WORK_DIR}/host_trace.json --trace-cats all
        --stats-json ${WORK_DIR}/host_stats.json
        --manifest ${WORK_DIR}/manifest.json
        ${PROGRAM}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-run --host-obs failed (${run_rc}):\n"
        "${run_out}\n${run_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} --expect-host
        --trace ${WORK_DIR}/host_trace.json
        --stats ${WORK_DIR}/host_stats.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_trace.py --expect-host failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

if(NOT EXISTS ${WORK_DIR}/manifest.json)
    message(FATAL_ERROR "cyclops-run --manifest wrote no manifest")
endif()
file(READ ${WORK_DIR}/manifest.json manifest_text)
if(NOT manifest_text MATCHES "cyclops-manifest-v1")
    message(FATAL_ERROR "manifest.json lacks the schema marker:\n"
        "${manifest_text}")
endif()
