# CTest script: run cyclops-run with all observability exports on and
# validate the produced trace JSON, stats JSON and epoch CSV.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
    COMMAND ${RUNNER} -t 4
        --trace-out ${WORK_DIR}/trace.json --trace-cats all
        --stats-json ${WORK_DIR}/stats.json
        --stats-csv ${WORK_DIR}/series.csv --stats-interval 100
        ${PROGRAM}
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-run failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER}
        --trace ${WORK_DIR}/trace.json
        --stats ${WORK_DIR}/stats.json
        --csv ${WORK_DIR}/series.csv
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_trace.py failed (${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
