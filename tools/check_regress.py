#!/usr/bin/env python3
"""Compare two perf artifacts and flag host-throughput regressions.

  check_regress.py baseline.json current.json [--tolerance-pct N]

Both files must be the same kind of artifact: either two
BENCH_simperf.json reports (bench_simperf --json) or two run manifests
(cyclops-manifest-v1, from cyclops-run --manifest or any bench's
--manifest flag).

For simperf reports every workload row is matched by name and every
engine row by (name, workers); cyclesPerSec and mips must not drop by
more than the tolerance. For manifests the headline run.cyclesPerSec
and run.mips are compared.

Wall-clock noise is real, especially on small shared hosts, so the
tolerance is noise-aware: the effective bound is
    max(--tolerance-pct, --cov-mult * worst CoV recorded in the
        baseline's overhead experiments)
i.e. a report that measured 5% run-to-run variation is never failed
over a 6% dip. Manifests carry no CoV, so only --tolerance-pct
applies there.

A config-hash mismatch (different simulated machine) makes the
comparison apples-to-oranges: it is reported as a warning and the
numeric checks still run, since drift in defaults is itself worth
seeing, but interpret failures accordingly.

Exit status: 0 when no metric regressed beyond tolerance, 1 otherwise.
"""

import argparse
import json
import sys

status = 0


def report(msg):
    print(f"check_regress: {msg}")


def regress(msg):
    global status
    status = 1
    print(f"check_regress: REGRESSION: {msg}", file=sys.stderr)


def fail(msg):
    print(f"check_regress: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")


def kind(doc):
    if doc.get("schema") == "cyclops-manifest-v1":
        return "manifest"
    if doc.get("benchmark") == "simperf":
        return "simperf"
    fail("unrecognized artifact (want cyclops-manifest-v1 or a "
         "simperf report)")


def compare_metric(label, base, cur, tolerance_pct):
    """Flag cur < base beyond tolerance; report improvements too."""
    if base <= 0:
        return
    delta_pct = (cur - base) / base * 100.0
    if delta_pct < -tolerance_pct:
        regress(f"{label}: {base:.0f} -> {cur:.0f} "
                f"({delta_pct:+.1f}%, tolerance {tolerance_pct:.1f}%)")
    elif delta_pct > tolerance_pct:
        report(f"{label}: improved {delta_pct:+.1f}%")


def baseline_cov(doc):
    """Worst run-to-run CoV recorded by the baseline's experiments."""
    worst = 0.0
    for key in ("profilerOverhead", "hostObs"):
        obj = doc.get(key)
        if not isinstance(obj, dict):
            continue
        for field, value in obj.items():
            if field.endswith("CovPct") and isinstance(value, (int, float)):
                worst = max(worst, value)
    return worst


def compare_simperf(base, cur, tolerance_pct):
    base_wl = {w["name"]: w for w in base.get("workloads", [])}
    cur_wl = {w["name"]: w for w in cur.get("workloads", [])}
    for name, bw in sorted(base_wl.items()):
        cw = cur_wl.get(name)
        if cw is None:
            regress(f"workload '{name}' disappeared from the report")
            continue
        compare_metric(f"workload {name} cyclesPerSec",
                       bw["cyclesPerSec"], cw["cyclesPerSec"],
                       tolerance_pct)
        compare_metric(f"workload {name} mips",
                       bw["mips"], cw["mips"], tolerance_pct)

    base_en = {(e["name"], e["workers"]): e
               for e in base.get("engines", [])}
    cur_en = {(e["name"], e["workers"]): e
              for e in cur.get("engines", [])}
    for key, be in sorted(base_en.items()):
        ce = cur_en.get(key)
        if ce is None:
            regress(f"engine row {key[0]} (workers={key[1]}) "
                    f"disappeared from the report")
            continue
        compare_metric(f"engine {key[0]} mips", be["mips"], ce["mips"],
                       tolerance_pct)
    return len(base_wl) + len(base_en)


def compare_manifest(base, cur, tolerance_pct):
    for doc, which in ((base, "baseline"), (cur, "current")):
        if "run" not in doc:
            fail(f"{which} manifest has no 'run' section")
    if base.get("workload") != cur.get("workload"):
        report(f"warning: comparing different workloads "
               f"('{base.get('workload')}' vs '{cur.get('workload')}')")
    compare_metric("run cyclesPerSec", base["run"].get("cyclesPerSec", 0),
                   cur["run"].get("cyclesPerSec", 0), tolerance_pct)
    compare_metric("run mips", base["run"].get("mips", 0),
                   cur["run"].get("mips", 0), tolerance_pct)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="older artifact (reference)")
    parser.add_argument("current", help="newer artifact to judge")
    parser.add_argument("--tolerance-pct", type=float, default=10.0,
                        help="minimum allowed drop percent "
                             "(default 10.0)")
    parser.add_argument("--cov-mult", type=float, default=3.0,
                        help="widen tolerance to this multiple of the "
                             "baseline's worst recorded CoV "
                             "(default 3.0)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_kind = kind(base)
    if base_kind != kind(cur):
        fail("baseline and current are different artifact kinds")

    base_hash = (base.get("config") or {}).get("hash")
    cur_hash = (cur.get("config") or {}).get("hash")
    if base_hash and cur_hash and base_hash != cur_hash:
        report(f"warning: config hash changed "
               f"({base_hash} -> {cur_hash}) — the simulated machines "
               f"differ, throughput deltas may be intentional")

    tolerance = args.tolerance_pct
    if base_kind == "simperf":
        cov = baseline_cov(base)
        tolerance = max(tolerance, args.cov_mult * cov)
        if tolerance > args.tolerance_pct:
            report(f"noise-aware tolerance {tolerance:.1f}% "
                   f"(baseline worst CoV {cov:.1f}% x {args.cov_mult})")
        n = compare_simperf(base, cur, tolerance)
    else:
        n = compare_manifest(base, cur, tolerance)

    if status == 0:
        report(f"OK: {n} rows compared, none regressed beyond "
               f"{tolerance:.1f}%")
    sys.exit(status)


if __name__ == "__main__":
    main()
