# CTest script: run two identical fault-injection campaigns at
# different job counts, require byte-identical reports, and validate
# the schema and campaign invariants with check_faultcamp.py.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
    COMMAND ${RUNNER} --seed 3 --iters 40 --jobs 0
        --out ${WORK_DIR}/camp_parallel.json
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-faultcamp failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

execute_process(
    COMMAND ${RUNNER} --seed 3 --iters 40 --jobs 1
        --out ${WORK_DIR}/camp_serial.json
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "cyclops-faultcamp failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} ${WORK_DIR}/camp_parallel.json
        --compare ${WORK_DIR}/camp_serial.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_faultcamp.py failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
