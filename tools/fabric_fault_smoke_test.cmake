# CTest script: fabric fault-tolerance smoke. Two identical multi-chip
# runs on a degraded fabric — one dead link forcing reroutes plus one
# seeded flaky link forcing retransmissions — must complete verified
# (exit 0), be byte-identical across repeats (every corruption draw
# and retry is a pure function of the seed), and the exported fabric
# stats must pass check_fabric.py's degraded-mode identities
# (conservation with dropped flits, linkFlits >= flits x hops).
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/a ${WORK_DIR}/b)

foreach(side a b)
    execute_process(
        COMMAND ${RUNNER} -t 4 --chips 2,2,1
            --disable-link 0->1 --link-flaky 1->0=200000
            --fabric-fault-seed 7
            --fabric-stats ${WORK_DIR}/${side}/fabric.json
            --fabric-heatmap ${WORK_DIR}/${side}/heatmap.csv
            ${PROGRAM}
        RESULT_VARIABLE run_rc
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR
            "cyclops-run degraded-fabric run ${side} failed (${run_rc}):\n"
            "${run_out}\n${run_err}")
    endif()
    # The fault summary line rides the run footer on stderr.
    if(NOT run_err MATCHES "rerouted")
        message(FATAL_ERROR
            "degraded-fabric run ${side} printed no fault summary:\n"
            "${run_out}\n${run_err}")
    endif()
endforeach()

# Determinism: the degraded run's artifacts byte-identical on repeat.
foreach(artifact fabric.json heatmap.csv)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/a/${artifact} ${WORK_DIR}/b/${artifact}
        RESULT_VARIABLE cmp_rc)
    if(NOT cmp_rc EQUAL 0)
        message(FATAL_ERROR
            "${artifact} differs between identical degraded runs — "
            "fault injection is not deterministic")
    endif()
endforeach()

# Degraded-mode conservation identities + heatmap cross-check (a 2x2x1
# torus still registers its 8 directed links; the dead one just never
# carries flits).
execute_process(
    COMMAND ${PYTHON} ${CHECK_FABRIC} ${WORK_DIR}/a/fabric.json
        --heatmap ${WORK_DIR}/a/heatmap.csv --expect-links 8
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_fabric.py failed (${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
