#!/usr/bin/env python3
"""Validate and summarize the simulator's profiler outputs.

A --prof-out run writes three files from one base path: the JSON
report (base), flamegraph folded stacks (base.folded) and the bank
heatmap (base.heatmap.csv). This script cross-checks all three:

  check_prof.py --validate prof.json      schema + cross-file invariants
  check_prof.py --report prof.json        top symbols and bank utilization
  check_prof.py --report prof.json --top 5

Validation enforces the internal accounting identities (per-thread
sample counts sum to the total, folded-stack weights sum to the total,
every access-matrix column sums to the bank's own access counter), so
a run through it is a real consistency proof, not just a JSON parse.
Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_prof: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: not a JSON object")
    return doc


def check_json(path: str, doc: dict) -> None:
    for key in ("profInterval", "cycles", "samples", "unmappedSamples",
                "symbols", "hotPcs", "threads", "igClasses", "banks"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    for key in ("profInterval", "cycles", "samples", "unmappedSamples"):
        if not isinstance(doc[key], int) or doc[key] < 0:
            fail(f"{path}: '{key}' is not a non-negative integer")
    total = doc["samples"]
    if doc["unmappedSamples"] > total:
        fail(f"{path}: unmappedSamples exceeds samples")

    sym_total = 0
    prev = None
    for i, s in enumerate(doc["symbols"]):
        for key in ("symbol", "addr", "samples", "pct"):
            if key not in s:
                fail(f"{path}: symbols[{i}] missing '{key}'")
        if prev is not None and s["samples"] > prev:
            fail(f"{path}: symbols not sorted by samples descending")
        prev = s["samples"]
        sym_total += s["samples"]
    if sym_total != total:
        fail(f"{path}: symbol samples sum to {sym_total}, "
             f"want {total}")

    prev = None
    for i, h in enumerate(doc["hotPcs"]):
        for key in ("pc", "symbol", "samples"):
            if key not in h:
                fail(f"{path}: hotPcs[{i}] missing '{key}'")
        if prev is not None and h["samples"] > prev:
            fail(f"{path}: hotPcs not sorted by samples descending")
        prev = h["samples"]
    if len(doc["hotPcs"]) > 32:
        fail(f"{path}: more than 32 hot PCs")

    thread_total = sum(t["samples"] for t in doc["threads"])
    if thread_total != total:
        fail(f"{path}: per-thread samples sum to {thread_total}, "
             f"want {total}")
    for t in doc["threads"]:
        if t["samples"] == 0:
            fail(f"{path}: tid {t['tid']} listed with zero samples")

    for i, c in enumerate(doc["igClasses"]):
        for key in ("class", "accesses", "hits", "misses"):
            if key not in c:
                fail(f"{path}: igClasses[{i}] missing '{key}'")
        # Scratchpad accesses are counted but are neither cache hits
        # nor misses, hence <= rather than ==.
        if c["hits"] + c["misses"] > c["accesses"]:
            fail(f"{path}: igClass '{c['class']}' hits+misses exceed "
                 f"accesses")
    for i, b in enumerate(doc["banks"]):
        for key in ("bank", "accesses", "busyCycles", "queueCycles"):
            if key not in b:
                fail(f"{path}: banks[{i}] missing '{key}'")
    print(f"{path}: ok ({total} samples, {len(doc['symbols'])} symbols)")


def check_folded(path: str, doc: dict) -> None:
    total = 0
    with open(path) as f:
        for ln, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                fail(f"{path}: blank line {ln}")
            stack, sep, count = line.rpartition(" ")
            if not sep or not count.isdigit():
                fail(f"{path}: line {ln} is not 'stack count'")
            if not stack.startswith("tu") or ";" not in stack:
                fail(f"{path}: line {ln} stack must be 'tuN;symbol'")
            total += int(count)
    if total != doc["samples"]:
        fail(f"{path}: folded weights sum to {total}, "
             f"want {doc['samples']} samples")
    print(f"{path}: ok ({total} folded samples)")


def read_heatmap(path: str) -> dict:
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty")
    header = lines[0].split(",")
    if header[:2] != ["row", "quad"] or \
            any(h != f"bank{i}" for i, h in enumerate(header[2:])):
        fail(f"{path}: bad header '{lines[0]}'")
    banks = len(header) - 2
    out = {"banks": banks, "access": [], "conflict": [], "totals": None}
    for ln, line in enumerate(lines[1:], start=2):
        row = line.split(",")
        if len(row) != len(header):
            fail(f"{path}: line {ln} has {len(row)} fields, "
                 f"want {len(header)}")
        try:
            values = [int(v) for v in row[2:]]
        except ValueError:
            fail(f"{path}: line {ln} has a non-integer count")
        if row[0] in ("access", "conflict"):
            out[row[0]].append(values)
        elif row[0] == "bankAccesses":
            out["totals"] = values
        else:
            fail(f"{path}: line {ln} has unknown row kind '{row[0]}'")
    if out["totals"] is None:
        fail(f"{path}: missing bankAccesses row")
    if len(out["access"]) != len(out["conflict"]):
        fail(f"{path}: access/conflict matrices differ in height")
    return out


def check_heatmap(path: str) -> None:
    hm = read_heatmap(path)
    for b in range(hm["banks"]):
        col = sum(row[b] for row in hm["access"])
        if col != hm["totals"][b]:
            fail(f"{path}: bank {b} access column sums to {col}, "
                 f"bank counted {hm['totals'][b]}")
    for q, (acc, conf) in enumerate(zip(hm["access"], hm["conflict"])):
        for b in range(hm["banks"]):
            if conf[b] > acc[b]:
                fail(f"{path}: quad {q} bank {b} has more conflicts "
                     f"than accesses")
    print(f"{path}: ok ({len(hm['access'])} quads x {hm['banks']} "
          f"banks, {sum(hm['totals'])} bank accesses)")


def validate(base: str) -> None:
    doc = load(base)
    check_json(base, doc)
    check_folded(base + ".folded", doc)
    check_heatmap(base + ".heatmap.csv")


def report(base: str, top: int) -> None:
    doc = load(base)
    total = doc["samples"]
    print(f"profile: {doc['cycles']} cycles, {total} samples "
          f"(interval {doc['profInterval']}), "
          f"{len(doc['threads'])} sampled threads")
    print(f"\ntop {top} symbols:")
    print(f"  {'symbol':<24} {'samples':>10} {'pct':>7}")
    for s in doc["symbols"][:top]:
        print(f"  {s['symbol']:<24} {s['samples']:>10} "
              f"{s['pct']:>6.2f}%")

    banks = doc["banks"]
    total_acc = sum(b["accesses"] for b in banks)
    busy = sum(b["busyCycles"] for b in banks)
    queue = sum(b["queueCycles"] for b in banks)
    used = sum(1 for b in banks if b["accesses"] > 0)
    print(f"\nbank utilization: {used}/{len(banks)} banks used, "
          f"{total_acc} accesses, {busy} busy cycles, "
          f"{queue} queue cycles")
    if total_acc:
        hottest = max(banks, key=lambda b: b["accesses"])
        mean = total_acc / len(banks)
        print(f"  hottest bank {hottest['bank']}: "
              f"{hottest['accesses']} accesses "
              f"({hottest['accesses'] / mean:.2f}x the mean)")
    print("\nig class hit rates:")
    for c in doc["igClasses"]:
        if c["accesses"] == 0:
            continue
        lookups = c["hits"] + c["misses"]
        rate = 100.0 * c["hits"] / lookups if lookups else 0.0
        print(f"  {c['class']:<8} {c['accesses']:>10} accesses "
              f"{rate:>6.2f}% hit")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validate", action="append", default=[],
                        metavar="BASE",
                        help="profile base path to validate (checks "
                             "BASE, BASE.folded, BASE.heatmap.csv)")
    parser.add_argument("--report", action="append", default=[],
                        metavar="BASE",
                        help="profile base path to summarize")
    parser.add_argument("--top", type=int, default=10,
                        help="symbols to show in --report (default 10)")
    args = parser.parse_args()
    if not (args.validate or args.report):
        fail("nothing to do (use --validate/--report)")
    for base in args.validate:
        validate(base)
    for base in args.report:
        report(base, args.top)


if __name__ == "__main__":
    main()
