#!/usr/bin/env python3
"""Validate the simulator's observability outputs.

Used by the ctest smoke tests (and handy interactively):

  check_trace.py --trace trace.json   validate Chrome-trace JSON
  check_trace.py --stats stats.json   validate the stats JSON
  check_trace.py --csv series.csv     validate the epoch-series CSV

--expect-host additionally requires every --trace file to carry host
telemetry (the pid-2 "cyclops-host" process emitted under --host-obs
with the host trace category enabled).

--expect-chips N requires every --trace file to be a merged
multi-chip trace (cyclops-run --chips / arch::System): exactly N chip
processes named "cyclops-chip0".."cyclops-chip<N-1>" on pids 10..10+N-1,
each carrying at least one event. Chip-process naming and per-pid
timestamp order are validated whenever chip processes appear, with or
without the flag.

--expect-links N requires every --trace file to carry the fabric
process (pid 3, "cyclops-fabric", emitted with the "net" trace
category on multi-chip runs) with exactly N per-link tracks (thread
names "link.<a>-><b>") and at least one event.

Any number of the options may be combined; the script exits non-zero
with a message on the first malformed file.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str, expect_host: bool = False,
                expect_chips: int = 0, expect_links: int = 0) -> None:
    """Chrome trace-event JSON as Perfetto/about:tracing load it."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")
    # A trace with no events at all (empty ring export, or metadata
    # only) is valid Chrome-trace JSON and must be accepted: Perfetto
    # loads it, and the tracer emits it when nothing was recorded.
    if not events:
        if expect_host:
            fail(f"{path}: empty trace but host telemetry expected")
        if expect_chips:
            fail(f"{path}: empty trace but {expect_chips} chip "
                 f"processes expected")
        if expect_links:
            fail(f"{path}: empty trace but {expect_links} fabric link "
                 f"tracks expected")
        print(f"{path}: ok (empty trace)")
        return
    n_spans = 0
    n_host = 0
    n_flows = 0
    host_process_named = False
    fabric_process_named = False
    chip_procs = {}  # pid -> process_name for the 10+i chip tracks
    link_tracks = set()  # fabric (pid 3) thread names "link.<a>-><b>"
    flow_ids = {}  # flow id -> count of 's'/'f' endpoints
    for i, ev in enumerate(events):
        for key in ("ph", "pid"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}'")
        ph = ev["ph"]
        if ph == "M":
            if "name" not in ev or "args" not in ev:
                fail(f"{path}: metadata event {i} malformed")
            if (ev["name"] == "process_name" and ev["pid"] == 2 and
                    ev["args"].get("name") == "cyclops-host"):
                host_process_named = True
            if (ev["name"] == "process_name" and ev["pid"] == 3 and
                    ev["args"].get("name") == "cyclops-fabric"):
                fabric_process_named = True
            if (ev["name"] == "thread_name" and ev["pid"] == 3 and
                    str(ev["args"].get("name", "")).startswith("link.")):
                link_tracks.add(ev["args"]["name"])
            if (ev["name"] == "process_name" and ev["pid"] >= 10 and
                    str(ev["args"].get("name", ""))
                    .startswith("cyclops-chip")):
                chip_procs[ev["pid"]] = ev["args"]["name"]
            continue
        for key in ("name", "tid", "ts", "cat"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}'")
        if ev["cat"] == "host":
            # Host telemetry rides on its own dedicated process so
            # guest timelines never interleave with wall-clock spans.
            if ev["pid"] != 2:
                fail(f"{path}: host event {i} not on pid 2")
            n_host += 1
        elif ev["pid"] == 2:
            fail(f"{path}: non-host event {i} on the host pid")
        if ev["cat"] == "net":
            # Fabric events ride the dedicated pid-3 fabric process.
            if ev["pid"] != 3:
                fail(f"{path}: net event {i} not on pid 3")
        elif ev["pid"] == 3:
            fail(f"{path}: non-net event {i} on the fabric pid")
        if ph == "X":
            if "dur" not in ev or ev["dur"] < 0:
                fail(f"{path}: complete event {i} has bad duration")
            n_spans += 1
        elif ph == "C":
            if "args" not in ev:
                fail(f"{path}: counter event {i} missing args")
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                fail(f"{path}: instant event {i} missing scope")
        elif ph in ("s", "f"):
            # Flow events pair an injection ('s') with a delivery ('f')
            # through a shared id; 'f' must carry the enclosing-slice
            # binding point.
            if "id" not in ev:
                fail(f"{path}: flow event {i} missing 'id'")
            if ph == "f" and ev.get("bp") != "e":
                fail(f"{path}: flow-end event {i} missing bp=e")
            flow_ids[ev["id"]] = flow_ids.get(ev["id"], 0) + 1
            n_flows += 1
        else:
            fail(f"{path}: event {i} has unknown phase '{ph}'")
    # Chronological order is checked per process: guest events use the
    # simulated-cycle timebase, host events wall-clock nanoseconds, so
    # only within a pid is the order meaningful. The exporter sorts
    # each group; verify so regressions surface.
    by_pid = {}
    for ev in events:
        if ev["ph"] != "M":
            by_pid.setdefault(ev["pid"], []).append(ev["ts"])
    for pid, ts in by_pid.items():
        if ts != sorted(ts):
            fail(f"{path}: pid {pid} events not sorted by timestamp")
    if n_host and not host_process_named:
        fail(f"{path}: host events present but no cyclops-host "
             f"process_name metadata")
    if expect_host and not n_host:
        fail(f"{path}: no host telemetry events (expected --host-obs "
             f"with the host trace category)")
    # Multi-chip traces (arch::System) put each chip on its own
    # process: pid 10+i named "cyclops-chipI". The naming must match
    # the pid so Perfetto tracks line up with chip ids.
    events_per_pid = {}
    for ev in events:
        if ev["ph"] != "M":
            events_per_pid[ev["pid"]] = \
                events_per_pid.get(ev["pid"], 0) + 1
    for pid, name in sorted(chip_procs.items()):
        if name != f"cyclops-chip{pid - 10}":
            fail(f"{path}: chip process on pid {pid} named '{name}', "
                 f"want 'cyclops-chip{pid - 10}'")
    if expect_chips:
        want = {10 + i for i in range(expect_chips)}
        if set(chip_procs) != want:
            fail(f"{path}: chip processes on pids "
                 f"{sorted(chip_procs)} do not match --expect-chips "
                 f"{expect_chips} (want pids {sorted(want)})")
        for pid in sorted(want):
            if not events_per_pid.get(pid):
                fail(f"{path}: chip process pid {pid} "
                     f"(cyclops-chip{pid - 10}) has no events")
    # A flow id pairs one injection ('s') with one delivery ('f').
    # Ring-buffer drops can orphan an endpoint, but an id can never
    # appear more than twice.
    for fid, n in flow_ids.items():
        if n > 2:
            fail(f"{path}: flow id {fid} has {n} endpoints (max 2)")
    if link_tracks and not fabric_process_named:
        fail(f"{path}: fabric link tracks present but no "
             f"cyclops-fabric process_name metadata")
    if expect_links:
        if not fabric_process_named:
            fail(f"{path}: no cyclops-fabric process (pid 3); was the "
                 f"'net' trace category enabled on a --chips run?")
        if len(link_tracks) != expect_links:
            fail(f"{path}: {len(link_tracks)} fabric link tracks, "
                 f"want --expect-links {expect_links}")
        if not events_per_pid.get(3):
            fail(f"{path}: fabric process (pid 3) has no events")
    extra = f", {n_host} host" if n_host else ""
    if chip_procs:
        extra += f", {len(chip_procs)} chips"
    if link_tracks:
        extra += f", {len(link_tracks)} links, {n_flows} flow events"
    print(f"{path}: ok ({len(events)} events, {n_spans} spans{extra})")


def check_stats(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    for key in ("cycles", "counters", "histograms"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    if not isinstance(doc["cycles"], int) or doc["cycles"] < 0:
        fail(f"{path}: bad cycle count")
    for name, value in doc["counters"].items():
        if not isinstance(value, int):
            fail(f"{path}: counter '{name}' is not an integer")
    for name, h in doc["histograms"].items():
        for key in ("n", "sum", "max", "buckets"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        if sum(h["buckets"]) != h["n"]:
            fail(f"{path}: histogram '{name}' buckets do not sum to n")
    # The attribution gauges must cover every simulated cycle: summed
    # over the 7 categories they equal cycles * numThreads, but the
    # thread count is not in the file, so check divisibility instead.
    attr = {k: v for k, v in doc["counters"].items()
            if k.startswith("attr.")}
    if attr:
        total = sum(attr.values())
        if doc["cycles"] and total % doc["cycles"] != 0:
            fail(f"{path}: attribution total {total} is not a "
                 f"multiple of the {doc['cycles']}-cycle run")
    print(f"{path}: ok ({len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms)")


def check_csv(path: str) -> None:
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty")
    header = lines[0].split(",")
    if header[0] != "cycle":
        fail(f"{path}: first column must be 'cycle'")
    prev_cycle = -1
    for i, line in enumerate(lines[1:], start=2):
        row = line.split(",")
        if len(row) != len(header):
            fail(f"{path}: line {i} has {len(row)} fields, "
                 f"want {len(header)}")
        try:
            values = [int(v) for v in row]
        except ValueError:
            fail(f"{path}: line {i} has a non-integer field")
        if values[0] <= prev_cycle:
            fail(f"{path}: sample cycles not strictly increasing "
                 f"at line {i}")
        prev_cycle = values[0]
    print(f"{path}: ok ({len(lines) - 1} samples, "
          f"{len(header) - 1} counters)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome-trace JSON file to validate")
    parser.add_argument("--stats", action="append", default=[],
                        help="stats JSON file to validate")
    parser.add_argument("--csv", action="append", default=[],
                        help="epoch-series CSV file to validate")
    parser.add_argument("--expect-host", action="store_true",
                        help="require host telemetry in every trace")
    parser.add_argument("--expect-chips", type=int, default=0,
                        help="require N chip processes (pids 10..10+N-1)"
                             " in every trace")
    parser.add_argument("--expect-links", type=int, default=0,
                        help="require the fabric process (pid 3) with N "
                             "per-link tracks in every trace")
    args = parser.parse_args()
    if not (args.trace or args.stats or args.csv):
        fail("nothing to check (use --trace/--stats/--csv)")
    for path in args.trace:
        check_trace(path, expect_host=args.expect_host,
                    expect_chips=args.expect_chips,
                    expect_links=args.expect_links)
    for path in args.stats:
        check_stats(path)
    for path in args.csv:
        check_csv(path)


if __name__ == "__main__":
    main()
