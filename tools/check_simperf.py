#!/usr/bin/env python3
"""Validate a BENCH_simperf.json report.

Checks the schema (top-level fields, workload entries including the
required multi-chip fabric row, the cycle-attribution breakdown) and
the cycle-engine comparison invariants:
  - the engines list contains the serial reference, the sharded engine
    at 1/2/4/8 workers, and the sampled engine;
  - every sharded row reproduced the serial engine's simulated cycle
    and instruction counts exactly (the determinism contract of
    DESIGN.md section 14);
  - samplingErrorPct (sampled vs serial simulated cycles) is within
    bounds (default 5%, --max-sampling-error);
  - wall-clock sanity: every measurement ran for a positive time and
    positive throughput;
  - the profiler-overhead experiment used enough repeats (>= 5) and
    the run-to-run coefficient of variation stayed under --max-cov,
    so the reported overhead is a median, not single-run noise;
  - the multi-chip workload row carries the fabric counters
    (messages/bytes/queueCycles/flits*) with the flit-conservation
    identity intact — a multichip row without them means the run
    bypassed the cycle-driven fabric;
  - the fabric-observability overhead experiment (fabricObsOverhead)
    has the same repeat/CoV discipline, its simCyclesDrift is exactly
    zero (enabling fabric telemetry must not move a simulated cycle),
    and its overheadPct stays under --max-fabric-overhead;
  - the fault-model overhead experiment (fabricFaultOverhead: the
    fault model armed by a benign ppm=0 flaky link vs the healthy
    fast path) obeys the same gates — simCyclesDrift exactly zero,
    bounded overheadPct — so arming fault injection is proven to be
    a host-cost-only change;
  - the hostObs section is well-formed: a sharded row per worker
    count with per-worker lanes whose tick/defer counts sum exactly
    to the engine totals, and the sampled window split covering every
    simulated cycle.

Speedup assertions are gated on the recorded hostCores: on hosts with
fewer than 4 cores the sharded rows measure synchronization overhead,
not parallelism, so only the structural checks apply. With 4+ cores
the sharded engine at 4 workers must not be slower than 60% of serial
throughput (a loose floor — wall-clock noise is real), and with
--require-speedup it must beat serial outright.
"""

import argparse
import json
import sys

EXPECTED_ENGINES = (
    ("serial", 0),
    ("sharded_w1", 1),
    ("sharded_w2", 2),
    ("sharded_w4", 4),
    ("sharded_w8", 8),
    ("sampled", 0),
)

WORKLOAD_FIELDS = ("name", "simCycles", "instructions", "wallSeconds",
                   "cyclesPerSec", "mips", "attribution")
ENGINE_FIELDS = ("name", "workers", "simCycles", "instructions",
                 "wallSeconds", "mips", "speedup")


def fail(msg):
    print(f"check_simperf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_workload(i, w):
    where = f"workload {i}"
    for field in WORKLOAD_FIELDS:
        if field not in w:
            fail(f"{where}: missing field '{field}'")
    if not isinstance(w["name"], str) or not w["name"]:
        fail(f"{where}: empty name")
    where = f"workload '{w['name']}'"
    for field in ("simCycles", "instructions"):
        if not isinstance(w[field], int) or w[field] <= 0:
            fail(f"{where}: {field} must be a positive integer")
    if not w["wallSeconds"] > 0:
        fail(f"{where}: wallSeconds must be positive")
    if not w["mips"] > 0:
        fail(f"{where}: mips must be positive")
    attr = w["attribution"]
    if not isinstance(attr, dict) or not attr:
        fail(f"{where}: attribution must be a non-empty object")
    for cat, cycles in attr.items():
        if not isinstance(cycles, int) or cycles < 0:
            fail(f"{where}: attribution[{cat}] must be a nonneg integer")
    # Multi-chip rows must carry the fabric counters: without them the
    # row measured something that never touched the cycle-driven
    # fabric, which is the point of having it in the suite.
    if w["name"].startswith("multichip"):
        fabric = w.get("fabric")
        if not isinstance(fabric, dict):
            fail(f"{where}: multichip row missing 'fabric' counters")
        for field in ("messages", "bytes", "queueCycles",
                      "flitsInjected", "flitsDelivered",
                      "flitsInFlight", "droppedFlits", "retransmits"):
            if not isinstance(fabric.get(field), int) or \
                    fabric[field] < 0:
                fail(f"{where}: fabric.{field} must be a nonneg "
                     f"integer")
        if fabric["messages"] <= 0:
            fail(f"{where}: fabric.messages is zero — no traffic "
                 f"crossed the fabric")
        if fabric["flitsInjected"] != \
                fabric["flitsDelivered"] + fabric["flitsInFlight"] + \
                fabric["droppedFlits"]:
            fail(f"{where}: fabric flit conservation violated")


def check_engines(report, args):
    engines = report.get("engines")
    if not isinstance(engines, list):
        fail("missing 'engines' array")
    rows = {}
    for i, e in enumerate(engines):
        for field in ENGINE_FIELDS:
            if field not in e:
                fail(f"engine row {i}: missing field '{field}'")
        rows[(e["name"], e["workers"])] = e
    for key in EXPECTED_ENGINES:
        if key not in rows:
            fail(f"engines: missing row {key[0]} (workers={key[1]})")

    serial = rows[("serial", 0)]
    if serial["simCycles"] <= 0 or serial["instructions"] <= 0:
        fail("serial engine row has no work")

    # Determinism: sharded == serial, exactly, at every worker count.
    for name, workers in EXPECTED_ENGINES:
        if not name.startswith("sharded"):
            continue
        row = rows[(name, workers)]
        for field in ("simCycles", "instructions"):
            if row[field] != serial[field]:
                fail(f"{name}: {field} {row[field]} != serial "
                     f"{serial[field]} — sharded engine diverged")

    err = report.get("samplingErrorPct")
    if not isinstance(err, (int, float)) or err < 0:
        fail("samplingErrorPct missing or negative")
    if err > args.max_sampling_error:
        fail(f"samplingErrorPct {err:.2f} exceeds bound "
             f"{args.max_sampling_error:.2f}")

    cores = report.get("hostCores")
    if not isinstance(cores, int) or cores < 0:
        fail("hostCores missing or negative")
    if cores >= 4:
        w4 = rows[("sharded_w4", 4)]
        if w4["speedup"] < 0.6:
            fail(f"sharded_w4 speedup {w4['speedup']:.2f} below 0.6 "
                 f"on a {cores}-core host")
        if args.require_speedup and w4["speedup"] < 1.0:
            fail(f"sharded_w4 speedup {w4['speedup']:.2f} < 1.0 "
                 f"on a {cores}-core host (--require-speedup)")
    return len(engines), err, cores


def check_overhead(name, overhead, args):
    """A median-of-repeats A/B experiment (profiler or host obs)."""
    if not isinstance(overhead, dict):
        fail(f"missing '{name}' object")
    for field in ("disabledCyclesPerSec", "enabledCyclesPerSec",
                  "overheadPct", "repeats", "disabledCovPct",
                  "enabledCovPct"):
        if field not in overhead:
            fail(f"{name}: missing field '{field}'")
    if overhead["repeats"] < 5:
        fail(f"{name}: only {overhead['repeats']} repeats — the "
             f"overhead number is single-run noise, need >= 5")
    for field in ("disabledCovPct", "enabledCovPct"):
        cov = overhead[field]
        if not isinstance(cov, (int, float)) or cov < 0:
            fail(f"{name}: {field} missing or negative")
        if cov > args.max_cov:
            fail(f"{name}: {field} {cov:.1f}% exceeds --max-cov "
                 f"{args.max_cov:.1f}% — host too noisy to trust "
                 f"the overhead measurement")


def check_hostobs(report, args):
    obs = report.get("hostObs")
    if not isinstance(obs, dict):
        fail("missing 'hostObs' object")
    if obs.get("enabled") is not True:
        fail("hostObs: not enabled")
    for field in ("overheadPct", "overheadRepeats", "peakRssKb"):
        if field not in obs:
            fail(f"hostObs: missing field '{field}'")
    if obs["overheadRepeats"] < 5:
        fail(f"hostObs: only {obs['overheadRepeats']} overhead repeats")
    if obs["peakRssKb"] <= 0:
        fail("hostObs: peakRssKb must be positive")

    sampled = obs.get("sampled")
    if not isinstance(sampled, dict):
        fail("hostObs: missing 'sampled' window accounting")
    for field in ("detailedCycles", "functionalCycles", "warmAccesses"):
        if not isinstance(sampled.get(field), int) or sampled[field] < 0:
            fail(f"hostObs: sampled.{field} must be a nonneg integer")

    sharded = obs.get("sharded")
    if not isinstance(sharded, list) or not sharded:
        fail("hostObs: missing 'sharded' rows")
    for row in sharded:
        name = row.get("name", "?")
        for field in ("workers", "wallSeconds", "shardedTicks",
                      "deferredCommits", "gapExplainedPct", "perWorker"):
            if field not in row:
                fail(f"hostObs {name}: missing field '{field}'")
        lanes = row["perWorker"]
        if not isinstance(lanes, list):
            fail(f"hostObs {name}: perWorker must be a list")
        # Per-lane tallies are exact (each lane is written only by its
        # owning worker thread): the sums must reproduce the engine
        # totals with no slack at all.
        ticks = sum(l.get("ticks", 0) for l in lanes)
        defers = sum(l.get("defers", 0) for l in lanes)
        if ticks != row["shardedTicks"]:
            fail(f"hostObs {name}: per-worker ticks {ticks} != "
                 f"shardedTicks {row['shardedTicks']}")
        if defers != row["deferredCommits"]:
            fail(f"hostObs {name}: per-worker defers {defers} != "
                 f"deferredCommits {row['deferredCommits']}")
    return len(sharded)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_simperf.json path")
    parser.add_argument("--max-sampling-error", type=float, default=5.0,
                        help="samplingErrorPct bound (default 5.0)")
    parser.add_argument("--max-cov", type=float, default=50.0,
                        help="max run-to-run coefficient of variation "
                             "percent in overhead experiments "
                             "(default 50.0)")
    parser.add_argument("--max-fabric-overhead", type=float,
                        default=10.0,
                        help="max fabric-observability host overhead "
                             "percent (default 10.0; design target is "
                             "under 2 on a quiet host)")
    parser.add_argument("--require-speedup", action="store_true",
                        help="require sharded_w4 to beat serial "
                             "(only meaningful on 4+ core hosts)")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args.report}: {e}")

    if report.get("benchmark") != "simperf":
        fail("not a simperf report")
    workloads = report.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        fail("missing 'workloads' array")
    for i, w in enumerate(workloads):
        check_workload(i, w)
    # The fabric-lockstep path (arch::System) must stay on the
    # trajectory: require the multi-chip row next to the single-chip
    # workloads.
    if not any(w["name"].startswith("multichip") for w in workloads):
        fail("workloads: no multi-chip row (name starting "
             "'multichip') — the fabric path is not measured")

    check_overhead("profilerOverhead", report.get("profilerOverhead"),
                   args)
    fabric_obs = report.get("fabricObsOverhead")
    check_overhead("fabricObsOverhead", fabric_obs, args)
    # The determinism bar is absolute: fabric observability on vs off
    # must produce byte-identical simulated cycles.
    if fabric_obs.get("simCyclesDrift") != 0:
        fail(f"fabricObsOverhead: simCyclesDrift "
             f"{fabric_obs.get('simCyclesDrift')} != 0 — enabling "
             f"fabric telemetry changed simulated timing")
    if fabric_obs["overheadPct"] > args.max_fabric_overhead:
        fail(f"fabricObsOverhead: overheadPct "
             f"{fabric_obs['overheadPct']:.2f} exceeds "
             f"--max-fabric-overhead {args.max_fabric_overhead:.2f}")
    fault_oh = report.get("fabricFaultOverhead")
    check_overhead("fabricFaultOverhead", fault_oh, args)
    # Arming the fault model with a benign map (flaky link at ppm = 0)
    # is a host-cost-only change: every message still rides its
    # healthy path, so the simulated cycle counts must match exactly.
    if fault_oh.get("simCyclesDrift") != 0:
        fail(f"fabricFaultOverhead: simCyclesDrift "
             f"{fault_oh.get('simCyclesDrift')} != 0 — arming the "
             f"fault model changed simulated timing")
    if fault_oh["overheadPct"] > args.max_fabric_overhead:
        fail(f"fabricFaultOverhead: overheadPct "
             f"{fault_oh['overheadPct']:.2f} exceeds "
             f"--max-fabric-overhead {args.max_fabric_overhead:.2f}")
    nshard = check_hostobs(report, args)
    nengines, err, cores = check_engines(report, args)
    print(f"check_simperf: OK: {len(workloads)} workloads, "
          f"{nengines} engine rows, {nshard} host-obs sharded rows, "
          f"sampling error {err:.2f}%, {cores}-core host")


if __name__ == "__main__":
    main()
