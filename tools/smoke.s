# Observability smoke program: each software thread sums a shared
# 16-word vector and stores its result into a per-thread output slot.
# Exercises loads, stores, integer ops and loops, so a traced run
# produces mem/cache events on every thread. Run, for example:
#
#   cyclops-run -t 4 --trace-out trace.json --stats-json stats.json \
#       --stats-csv series.csv --stats-interval 100 tools/smoke.s
#
# r4 = software thread index (kernel convention).

    .text
start:
    la      r10, vec        # element pointer
    li      r11, 16         # remaining elements
    li      r12, 0          # accumulator
loop:
    lw      r13, 0(r10)
    add     r12, r12, r13
    addi    r10, r10, 4
    subi    r11, r11, 1
    bnez    r11, loop

    la      r14, out        # out[tid] = sum
    slli    r15, r4, 2
    add     r14, r14, r15
    sw      r12, 0(r14)
    halt

    .data
    .align 64
vec:
    .word 1, 2, 3, 4, 5, 6, 7, 8
    .word 9, 10, 11, 12, 13, 14, 15, 16
    .align 64
out:
    .space 512
