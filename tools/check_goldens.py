#!/usr/bin/env python3
"""Compare a benchmark CSV against its committed golden.

Structure (table count, row count, headers, non-numeric cells) must
match exactly. A numeric cell passes when

    |actual - golden| <= max(ABS_TOL, REL_TOL * |golden|)

The tolerance absorbs rounding of derived quantities (speedups and
percentages are printed with one decimal); raw cycle counts are exact
in a deterministic simulator but share the same band so a legitimate
timing-model change shows up as a controlled, reviewable golden update
rather than CI noise.
"""

import argparse
import sys

ABS_TOL = 2.0
REL_TOL = 0.05


def parse_number(cell):
    try:
        return float(cell)
    except ValueError:
        return None


def compare(golden_path, actual_path):
    with open(golden_path) as f:
        golden = f.read().splitlines()
    with open(actual_path) as f:
        actual = f.read().splitlines()

    errors = []
    if len(golden) != len(actual):
        errors.append(
            f"line count differs: golden {len(golden)}, actual {len(actual)}"
        )
    for lineno, (g, a) in enumerate(zip(golden, actual), start=1):
        gcells = g.split(",")
        acells = a.split(",")
        if len(gcells) != len(acells):
            errors.append(f"line {lineno}: column count differs")
            continue
        for col, (gc, ac) in enumerate(zip(gcells, acells), start=1):
            gnum = parse_number(gc)
            anum = parse_number(ac)
            if gnum is None or anum is None:
                if gc.strip() != ac.strip():
                    errors.append(
                        f"line {lineno} col {col}: '{ac}' != '{gc}'"
                    )
                continue
            tol = max(ABS_TOL, REL_TOL * abs(gnum))
            if abs(anum - gnum) > tol:
                errors.append(
                    f"line {lineno} col {col}: {anum} vs golden {gnum} "
                    f"(tol {tol:.3g})"
                )
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--golden", required=True)
    ap.add_argument("--actual", required=True)
    args = ap.parse_args()

    errors = compare(args.golden, args.actual)
    if errors:
        print(f"{args.actual} diverges from {args.golden}:")
        for e in errors[:20]:
            print(f"  {e}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return 1
    print(f"{args.actual}: matches golden within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
