# Multi-chip SPMD smoke program: the same image boots on every chip
# of a --chips torus. Every thread stores into a local per-thread
# slot (trace activity on every chip); thread 0 additionally sends
# its chip id through the fabric to the next chip's remote window
# (physical bit 23 + chip-id bits, DESIGN.md section 16) and prints
# "c<id>/<n>" to its chip's console. Run, for example:
#
#   cyclops-run -t 4 --chips 2,2,1 --trace-out trace.json \
#       tools/multichip.s
#
# r4 = software thread index (kernel convention); SPR 6 = chip id,
# SPR 7 = chip count (1 on a standalone chip).

    .text
start:
    mfspr   r8, 6           # chip id
    mfspr   r9, 7           # chip count

    la      r10, out        # out[tid] = chipid + tid
    slli    r11, r4, 2
    add     r10, r10, r11
    add     r12, r8, r4
    sw      r12, 0(r10)

    bnez    r4, done        # the fabric part is thread 0's job

    addi    r13, r8, 1      # next = (id + 1) mod nchips
    sub     r14, r13, r9
    bnez    r14, nowrap
    li      r13, 0
nowrap:
    slli    r15, r13, 17    # remote EA = 1<<23 | next<<17 | 0
    li      r16, 1
    slli    r16, r16, 23
    or      r15, r15, r16
    addi    r17, r8, 1      # payload: own id + 1 (nonzero)
    sw      r17, 0(r15)

    li      r4, 99          # console: "c<id>/<n>\n"
    trap    1
    mv      r4, r8
    trap    2
    li      r4, 47
    trap    1
    mv      r4, r9
    trap    2
    li      r4, 10
    trap    1
done:
    halt

    .data
    .align 64
out:
    .space 512
