#!/usr/bin/env python3
"""Validate a fabric observability export (DESIGN.md section 17).

  check_fabric.py fabric.json                  schema + conservation
  check_fabric.py fabric.json --heatmap h.csv  also cross-check the CSV

The JSON is the cyclops-fabric-v1 file written by --fabric-stats
(arch::System::writeFabricStats). Beyond schema checks, the script
enforces the conservation identities that tie the per-link telemetry
to the global counters — any drift means a link is double-counting or
losing traffic:

  flitsInjected == flitsDelivered + flitsInFlight + droppedFlits
  sum(pair.messages) == fabric.messages
  sum(pair.bytes)    == fabric.bytes
  sum(pair.flits)    == fabric.flitsInjected
  sum(link.flits)    == sum(pair.linkFlits)
  sum(link.stallCycles) == fabric.queueCycles
  per-link counters == links[] array entries
  total.sum == queue.sum + wire.sum (exact latency split)

The healthy-fabric identities are enforced only while the link-fault
map is empty ("faults".active false) — with faults active, detours
and retransmits make a pair's link crossings a per-packet quantity
(pair.linkFlits) instead of the analytic flits x hops product:

  healthy only: pair.linkFlits == pair.flits * pair.hops
  healthy only: link.busyCycles == link.flits (one flit per cycle;
                derated links stretch occupancy)
  healthy only: histogram n == messages (an abandoned message is
                never sampled, so degraded runs have n <= messages)

With --heatmap, the CSV written by --fabric-heatmap must agree with
the JSON row for row: pair rows are the (src, dst) matrix, link rows
the per-directed-link congestion columns.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_fabric: {msg}", file=sys.stderr)
    sys.exit(1)


def load_stats(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: not a JSON object")
    if doc.get("schema") != "cyclops-fabric-v1":
        fail(f"{path}: schema '{doc.get('schema')}' is not "
             f"cyclops-fabric-v1")
    for key in ("cycles", "topology", "faults", "counters",
                "histograms", "pairs", "links"):
        if key not in doc:
            fail(f"{path}: missing '{key}'")
    faults = doc["faults"]
    for key in ("active", "seed", "atCycle", "links"):
        if key not in faults:
            fail(f"{path}: faults section missing '{key}'")
    for i, lf in enumerate(faults["links"]):
        for key in ("src", "dst", "kind", "flakyPpm", "escapePpm",
                    "derate"):
            if key not in lf:
                fail(f"{path}: fault link {i} missing '{key}'")
        if lf["kind"] not in ("dead", "flaky", "derated"):
            fail(f"{path}: fault link {i} has unknown kind "
                 f"'{lf['kind']}'")
        if lf["flakyPpm"] > 1_000_000 or lf["escapePpm"] > 1_000_000:
            fail(f"{path}: fault link {i} probabilities exceed 1e6 ppm")
    if faults["active"] and not faults["links"]:
        fail(f"{path}: faults active with an empty link list")
    topo = doc["topology"]
    for key in ("dimX", "dimY", "dimZ", "torus", "chips", "links"):
        if key not in topo:
            fail(f"{path}: topology missing '{key}'")
    if topo["chips"] != topo["dimX"] * topo["dimY"] * topo["dimZ"]:
        fail(f"{path}: topology chips {topo['chips']} != "
             f"{topo['dimX']}x{topo['dimY']}x{topo['dimZ']}")
    if topo["links"] != len(doc["links"]):
        fail(f"{path}: topology.links {topo['links']} != "
             f"{len(doc['links'])} link records")
    return doc


def check_stats(path: str, doc: dict) -> None:
    counters = doc["counters"]
    for name in ("fabric.messages", "fabric.bytes", "fabric.queueCycles",
                 "fabric.flitsInjected", "fabric.flitsDelivered",
                 "fabric.flitsInFlight", "fabric.droppedFlits",
                 "fabric.rerouted", "fabric.retransmits",
                 "fabric.retries", "fabric.crcErrors",
                 "fabric.unroutable"):
        if name not in counters:
            fail(f"{path}: missing counter '{name}'")
    faulty = doc["faults"]["active"]
    injected = counters["fabric.flitsInjected"]
    delivered = counters["fabric.flitsDelivered"]
    in_flight = counters["fabric.flitsInFlight"]
    dropped = counters["fabric.droppedFlits"]
    if injected != delivered + in_flight + dropped:
        fail(f"{path}: flit conservation violated: injected {injected} "
             f"!= delivered {delivered} + in-flight {in_flight} "
             f"+ dropped {dropped}")
    if not faulty:
        for name in ("fabric.droppedFlits", "fabric.rerouted",
                     "fabric.retransmits", "fabric.crcErrors",
                     "fabric.unroutable"):
            if counters[name] != 0:
                fail(f"{path}: healthy fabric has nonzero {name} "
                     f"({counters[name]})")

    # Chip-pair matrix sums equal the global counters exactly.
    pairs = doc["pairs"]
    for i, p in enumerate(pairs):
        for key in ("src", "dst", "messages", "bytes", "flits", "hops",
                    "linkFlits"):
            if key not in p:
                fail(f"{path}: pair {i} missing '{key}'")
        if p["src"] == p["dst"]:
            fail(f"{path}: pair {i} is self-addressed")
        if p["messages"] == 0:
            fail(f"{path}: pair {i} has zero messages (pairs with no "
                 f"traffic are omitted)")
        if not faulty and p["linkFlits"] != p["flits"] * p["hops"]:
            fail(f"{path}: pair {p['src']}->{p['dst']} linkFlits "
                 f"{p['linkFlits']} != flits x hops "
                 f"{p['flits'] * p['hops']} on a healthy fabric")
        if faulty and p["flits"] and p["linkFlits"] < p["flits"]:
            fail(f"{path}: pair {p['src']}->{p['dst']} linkFlits "
                 f"{p['linkFlits']} < flits {p['flits']} (every "
                 f"attempt crosses at least one link)")
    if sum(p["messages"] for p in pairs) != counters["fabric.messages"]:
        fail(f"{path}: pair message sum != fabric.messages")
    if sum(p["bytes"] for p in pairs) != counters["fabric.bytes"]:
        fail(f"{path}: pair byte sum != fabric.bytes")
    if sum(p["flits"] for p in pairs) != injected:
        fail(f"{path}: pair flit sum != fabric.flitsInjected")

    # Per-link sums: every flit of every transmission attempt crosses
    # every link of its (possibly detoured) route, and the pair matrix
    # accounts the same crossings in linkFlits — the two views must
    # agree exactly, faults or not.
    links = doc["links"]
    for i, l in enumerate(links):
        for key in ("src", "dst", "dir", "flits", "busyCycles",
                    "stallCycles", "occFlitCycles", "occPeak"):
            if key not in l:
                fail(f"{path}: link {i} missing '{key}'")
        if not faulty and l["busyCycles"] != l["flits"]:
            fail(f"{path}: link {l['src']}->{l['dst']} busyCycles "
                 f"{l['busyCycles']} != flits {l['flits']} "
                 f"(one flit per cycle)")
        if faulty and l["busyCycles"] < l["flits"]:
            fail(f"{path}: link {l['src']}->{l['dst']} busyCycles "
                 f"{l['busyCycles']} < flits {l['flits']} (derating "
                 f"only stretches occupancy)")
    link_flits = sum(l["flits"] for l in links)
    pair_link_flits = sum(p["linkFlits"] for p in pairs)
    if link_flits != pair_link_flits:
        fail(f"{path}: link flit sum {link_flits} != "
             f"pair linkFlits sum {pair_link_flits}")
    stall = sum(l["stallCycles"] for l in links)
    if stall != counters["fabric.queueCycles"]:
        fail(f"{path}: link stall sum {stall} != fabric.queueCycles "
             f"{counters['fabric.queueCycles']}")

    # The per-link scalars are registered twice (links[] and the
    # counters map); both views must agree.
    for l in links:
        base = f"fabric.link.{l['src']}->{l['dst']}"
        for field, col in (("flits", "flits"),
                           ("busyCycles", "busyCycles"),
                           ("stallCycles", "stallCycles"),
                           ("occFlitCycles", "occFlitCycles"),
                           ("occPeak", "occPeak")):
            name = f"{base}.{col}"
            if name not in counters:
                fail(f"{path}: missing counter '{name}'")
            if counters[name] != l[field]:
                fail(f"{path}: counter {name} {counters[name]} != "
                     f"links[] value {l[field]}")

    # Latency split: one sample per message in each histogram, and the
    # queue/wire decomposition is exact.
    hists = doc["histograms"]
    for name in ("fabric.latency.total", "fabric.latency.queue",
                 "fabric.latency.wire"):
        if name not in hists:
            fail(f"{path}: missing histogram '{name}'")
        h = hists[name]
        for key in ("n", "sum", "max", "buckets"):
            if key not in h:
                fail(f"{path}: histogram '{name}' missing '{key}'")
        if sum(h["buckets"]) != h["n"]:
            fail(f"{path}: histogram '{name}' buckets do not sum to n")
        if not faulty and h["n"] != counters["fabric.messages"]:
            fail(f"{path}: histogram '{name}' has {h['n']} samples, "
                 f"want one per message "
                 f"({counters['fabric.messages']})")
        if faulty and h["n"] > counters["fabric.messages"]:
            fail(f"{path}: histogram '{name}' has {h['n']} samples "
                 f"for {counters['fabric.messages']} messages")
    total = hists["fabric.latency.total"]
    queue = hists["fabric.latency.queue"]
    wire = hists["fabric.latency.wire"]
    if total["sum"] != queue["sum"] + wire["sum"]:
        fail(f"{path}: latency split broken: total.sum {total['sum']} "
             f"!= queue.sum {queue['sum']} + wire.sum {wire['sum']}")

    # The epoch series, when present, must end on the final totals.
    series = doc.get("series")
    if series is not None:
        names = list(series.get("counters", {}))
        if not names:
            fail(f"{path}: series has no counters")
        rows = {len(v) for v in series["counters"].values()}
        if len(rows) != 1 or len(series["cycle"]) not in rows:
            fail(f"{path}: series columns have ragged row counts")
        for name, col in series["counters"].items():
            if name in counters and col and col[-1] != counters[name]:
                fail(f"{path}: series '{name}' final value {col[-1]} "
                     f"!= end-of-run counter {counters[name]}")

    note = ""
    if faulty:
        note = (f", {len(doc['faults']['links'])} faulty links: "
                f"{counters['fabric.rerouted']} rerouted, "
                f"{counters['fabric.retransmits']} retransmits, "
                f"{dropped} flits dropped")
    print(f"{path}: ok ({len(links)} links, {len(pairs)} pairs, "
          f"{counters['fabric.messages']} messages, "
          f"{injected} flits conserved{note})")


HEATMAP_COLUMNS = ("kind,src,dst,dir,messages,bytes,flits,busyCycles,"
                   "stallCycles,occFlitCycles,occPeak")


def check_heatmap(path: str, doc: dict) -> None:
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines or lines[0] != "# cyclops-fabric-heatmap-v1":
        fail(f"{path}: missing cyclops-fabric-heatmap-v1 header")
    if len(lines) < 2 or lines[1] != HEATMAP_COLUMNS:
        fail(f"{path}: bad column header")
    pair_rows = {}
    link_rows = {}
    for i, line in enumerate(lines[2:], start=3):
        row = line.split(",")
        if len(row) != len(HEATMAP_COLUMNS.split(",")):
            fail(f"{path}: line {i} has {len(row)} fields")
        kind = row[0]
        try:
            vals = [int(v) for v in row[1:]]
        except ValueError:
            fail(f"{path}: line {i} has a non-integer field")
        src, dst, direction = vals[0], vals[1], vals[2]
        if kind == "pair":
            if direction != -1:
                fail(f"{path}: line {i}: pair rows use dir=-1")
            pair_rows[(src, dst)] = vals[3:6]  # messages, bytes, flits
        elif kind == "link":
            link_rows[(src, dst)] = vals[5:]  # flits .. occPeak
        else:
            fail(f"{path}: line {i} has unknown kind '{kind}'")

    want_pairs = {(p["src"], p["dst"]):
                  [p["messages"], p["bytes"], p["flits"]]
                  for p in doc["pairs"]}
    if pair_rows != want_pairs:
        fail(f"{path}: pair rows disagree with the JSON chip-pair "
             f"matrix")
    want_links = {(l["src"], l["dst"]):
                  [l["flits"], l["busyCycles"], l["stallCycles"],
                   l["occFlitCycles"], l["occPeak"]]
                  for l in doc["links"]}
    if link_rows != want_links:
        fail(f"{path}: link rows disagree with the JSON links array")

    # Row/column sums of the pair matrix against the global flit count:
    # everything a chip sends appears in exactly one row, everything it
    # receives in exactly one column.
    injected = doc["counters"]["fabric.flitsInjected"]
    if sum(v[2] for v in pair_rows.values()) != injected:
        fail(f"{path}: pair-matrix flit total != fabric.flitsInjected")
    print(f"{path}: ok ({len(pair_rows)} pair rows, "
          f"{len(link_rows)} link rows)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="cyclops-fabric-v1 JSON file")
    parser.add_argument("--heatmap", default=None,
                        help="congestion heatmap CSV to cross-check")
    parser.add_argument("--expect-links", type=int, default=0,
                        help="require exactly N directed links")
    args = parser.parse_args()
    doc = load_stats(args.stats)
    if args.expect_links and len(doc["links"]) != args.expect_links:
        fail(f"{args.stats}: {len(doc['links'])} links, want "
             f"--expect-links {args.expect_links}")
    check_stats(args.stats, doc)
    if args.heatmap:
        check_heatmap(args.heatmap, doc)


if __name__ == "__main__":
    main()
