# CTest script: fabric observability smoke. Two identical multi-chip
# runs with the full export surface on (merged trace with the net
# category, fabric stats JSON, congestion heatmap) must be
# byte-identical — observability is deterministic — and the emitted
# files must pass the dedicated validators: check_fabric.py for the
# conservation identities and check_trace.py --expect-links for the
# per-link Perfetto tracks.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/a ${WORK_DIR}/b)

foreach(side a b)
    execute_process(
        COMMAND ${RUNNER} -t 4 --chips 2,2,1
            --trace-out ${WORK_DIR}/${side}/trace.json --trace-cats all
            --fabric-stats ${WORK_DIR}/${side}/fabric.json
            --fabric-heatmap ${WORK_DIR}/${side}/heatmap.csv
            --stats-interval 64
            ${PROGRAM}
        RESULT_VARIABLE run_rc
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR
            "cyclops-run fabric-obs run ${side} failed (${run_rc}):\n"
            "${run_out}\n${run_err}")
    endif()
endforeach()

# Determinism: every observability artifact byte-identical across runs.
foreach(artifact trace.json fabric.json heatmap.csv)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/a/${artifact} ${WORK_DIR}/b/${artifact}
        RESULT_VARIABLE cmp_rc)
    if(NOT cmp_rc EQUAL 0)
        message(FATAL_ERROR
            "${artifact} differs between identical runs — fabric "
            "observability is not deterministic")
    endif()
endforeach()

# Conservation identities + heatmap cross-check. A 2x2x1 torus has 8
# directed links (4 chips x 2 plus-direction links; extent-2 minus
# wires duplicate the plus wires and are not registered).
execute_process(
    COMMAND ${PYTHON} ${CHECK_FABRIC} ${WORK_DIR}/a/fabric.json
        --heatmap ${WORK_DIR}/a/heatmap.csv --expect-links 8
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_fabric.py failed (${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")

# The merged trace must carry all 4 chip processes plus the fabric
# process with one track per directed link.
execute_process(
    COMMAND ${PYTHON} ${CHECK_TRACE} --expect-chips 4 --expect-links 8
        --trace ${WORK_DIR}/a/trace.json
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "check_trace.py --expect-links failed (${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
