#!/usr/bin/env python3
"""Validate a cyclops-faultcamp JSON report.

Checks the schema, the per-injection fields, and the campaign
invariants:
  - counts sum to the iteration count and match the injection list;
  - every injection is in exactly one of the five outcome classes;
  - iterations are contiguous and in order (0..N-1);
  - kind-specific target fields are present and well-formed;
  - cache-line faults are architecturally inert (timing-directory
    caches; functional data lives in flat DRAM) so they must classify
    as masked;
  - link faults carry well-formed probabilities (ppm <= 1e6), are
    never self-addressed, and a dead link (ppm == 0) never classifies
    as sdc — only a checksum escape can corrupt data silently;
  - a single-kind campaign (--kind) contains only that kind;
  - detected/crash outcomes carry a diagnostic detail string.

With --compare, additionally require a second report file to be
byte-identical (determinism across job counts).
"""

import argparse
import json
import sys

SCHEMA = "cyclops-faultcamp-v1"
OUTCOMES = ("masked", "detected", "sdc", "crash", "hang")
KINDS = ("register", "memory", "cacheLine", "link")
KIND_FIELDS = {
    "register": ("thread", "reg", "bit"),
    "memory": ("addr", "bit"),
    "cacheLine": ("cache", "line"),
    "link": ("linkSrc", "linkDst", "ppm", "escapePpm"),
}


def fail(msg):
    print(f"check_faultcamp: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_injection(i, inj):
    where = f"injection {i}"
    for field in ("iter", "seed", "kind", "cycle", "outcome", "cycles"):
        if field not in inj:
            fail(f"{where}: missing field '{field}'")
    if inj["iter"] != i:
        fail(f"{where}: iter {inj['iter']} out of order")
    if inj["kind"] not in KINDS:
        fail(f"{where}: unknown kind '{inj['kind']}'")
    if inj["outcome"] not in OUTCOMES:
        fail(f"{where}: unknown outcome '{inj['outcome']}'")
    if not isinstance(inj["cycle"], int) or inj["cycle"] < 1:
        fail(f"{where}: injection cycle must be a positive integer")
    for field in KIND_FIELDS[inj["kind"]]:
        if field not in inj:
            fail(f"{where}: {inj['kind']} fault missing '{field}'")
        if not isinstance(inj[field], int) or inj[field] < 0:
            fail(f"{where}: field '{field}' must be a nonneg integer")
    if inj["kind"] == "register" and not 1 <= inj["reg"] <= 63:
        fail(f"{where}: register {inj['reg']} out of range 1..63")
    if inj["kind"] == "cacheLine" and inj["outcome"] != "masked":
        fail(f"{where}: cache-line fault classified '{inj['outcome']}' "
             "(timing-only faults must be masked)")
    if inj["kind"] == "link":
        if inj["linkSrc"] == inj["linkDst"]:
            fail(f"{where}: link fault is self-addressed")
        if inj["ppm"] > 1_000_000 or inj["escapePpm"] > 1_000_000:
            fail(f"{where}: link probabilities exceed 1e6 ppm")
        if inj["ppm"] == 0 and inj["escapePpm"] == 0 \
                and inj["outcome"] == "sdc":
            fail(f"{where}: dead link classified 'sdc' (a dead link "
                 "cannot corrupt data silently)")
    if inj["outcome"] in ("detected", "crash") and not inj.get("detail"):
        fail(f"{where}: outcome '{inj['outcome']}' has no detail")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report", help="campaign JSON report")
    ap.add_argument("--compare", metavar="FILE",
                    help="second report that must be byte-identical")
    args = ap.parse_args()

    with open(args.report, "rb") as f:
        raw = f.read()
    camp = json.loads(raw)

    if camp.get("schema") != SCHEMA:
        fail(f"schema is {camp.get('schema')!r}, want {SCHEMA!r}")
    for field in ("campaign", "counts", "injections"):
        if field not in camp:
            fail(f"missing top-level field '{field}'")

    meta = camp["campaign"]
    for field in ("seed", "iterations", "threads", "bodyOps",
                  "maxCycles", "watchdogCycles", "kind"):
        if field not in meta:
            fail(f"campaign header missing '{field}'")
    if meta["kind"] not in KINDS + ("mixed",):
        fail(f"campaign header kind {meta['kind']!r} unknown")

    injections = camp["injections"]
    if len(injections) != meta["iterations"]:
        fail(f"{len(injections)} injections but "
             f"{meta['iterations']} iterations")

    tally = dict.fromkeys(OUTCOMES, 0)
    for i, inj in enumerate(injections):
        check_injection(i, inj)
        if meta["kind"] != "mixed" and inj["kind"] != meta["kind"]:
            fail(f"injection {i}: kind '{inj['kind']}' in a "
                 f"'{meta['kind']}'-only campaign")
        tally[inj["outcome"]] += 1

    counts = camp["counts"]
    if set(counts) != set(OUTCOMES):
        fail(f"counts keys {sorted(counts)} != {sorted(OUTCOMES)}")
    if counts != tally:
        fail(f"counts {counts} disagree with injection list {tally}")
    if sum(counts.values()) != meta["iterations"]:
        fail("counts do not sum to the iteration count")

    if args.compare:
        with open(args.compare, "rb") as f:
            other = f.read()
        if raw != other:
            fail(f"{args.report} and {args.compare} differ "
                 "(campaign is not deterministic)")

    print(f"check_faultcamp: OK: {meta['iterations']} injections, " +
          " ".join(f"{k}={v}" for k, v in counts.items()))


if __name__ == "__main__":
    main()
