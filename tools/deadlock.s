; Two-TU hardware-barrier deadlock. Both threads arm barrier 0; after
; a software handshake, thread 0 enters barrier 0 and spins for its
; current-cycle bit to drop, while thread 1 mistakenly waits on
; barrier 1 (which nobody armed). Neither bit ever changes.
        mfspr   r3, 0
        li      r20, 1          ; barrier 0 current-cycle bit
        li      r21, 2          ; barrier 0 next-cycle bit
        mv      r22, r20
        mtspr   4, r22          ; arm barrier 0
        la      r10, ready
        bnez    r3, thread1
wait0:                          ; wait until thread 1 is armed
        lw      r11, 0(r10)
        beqz    r11, wait0
        nor     r23, r20, r0    ; enter barrier 0
        and     r22, r22, r23
        or      r22, r22, r21
        mtspr   4, r22
spin0:
        mfspr   r23, 4
        and     r24, r23, r20
        bnez    r24, spin0      ; thread 1 holds bit 0 forever
        halt
thread1:
        li      r11, 1
        sw      r11, 0(r10)     ; handshake: armed
        li      r24, 4          ; barrier 1 current-cycle bit
spin1:
        mfspr   r23, 4
        and     r25, r23, r24
        beqz    r25, spin1      ; nobody ever arms barrier 1
        halt
        .data
        .align 64
ready:
        .word 0
