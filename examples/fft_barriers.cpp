/**
 * @file
 * The paper's headline synchronization result, in miniature: run the
 * SPLASH-2-style FFT with the wired-OR hardware barrier and with the
 * memory-based tree barrier, and compare total / run / stall cycles
 * (Figure 7's metric).
 */

#include <cstdio>

#include "workloads/splash.h"

using namespace cyclops;
using namespace cyclops::workloads;

int
main()
{
    const u32 threads = 16;
    const u32 points = 256; // the paper's Figure 7(a) input

    std::printf("%u-point FFT on %u threads (Figure 7a)\n\n", points, threads);

    const SplashResult hw =
        runFft(threads, points, BarrierKind::Hw, ChipConfig{});
    const SplashResult sw =
        runFft(threads, points, BarrierKind::SwTree, ChipConfig{});

    auto show = [](const char *name, const SplashResult &r) {
        std::printf("%-28s total %8llu   run %9llu   stall %9llu%s\n",
                    name, static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.runCycles),
                    static_cast<unsigned long long>(r.stallCycles),
                    r.verified ? "" : "  (VERIFY FAILED)");
    };
    show("hardware barrier (SPR OR):", hw);
    show("software tree barrier:", sw);

    const double gain =
        100.0 * (double(sw.cycles) - double(hw.cycles)) /
        double(sw.cycles);
    std::printf("\nhardware barrier saves %.1f%% of total cycles "
                "(paper: up to 10%% on the 256-point FFT)\n", gain);
    return hw.verified && sw.verified ? 0 : 1;
}
