/**
 * @file
 * The cellular approach (paper sections 1 and 2.2): chips replicated
 * in a regular 3-D torus. This example builds a 4x4x4 system (64
 * chips, 8192 thread units), routes messages with dimension-order
 * routing, and measures neighbor latency, worst-case latency, and the
 * all-to-all exchange time of a halo-style communication step.
 */

#include <cstdio>

#include "net/topology.h"

using namespace cyclops;
using namespace cyclops::net;

int
main()
{
    NetConfig cfg;
    cfg.dimX = cfg.dimY = cfg.dimZ = 4;
    cfg.torus = true;
    Fabric fabric(cfg);

    std::printf("system: %ux%ux%u torus = %u chips, %u thread units\n",
                cfg.dimX, cfg.dimY, cfg.dimZ, cfg.numChips(),
                cfg.numChips() * 128);
    std::printf("links: 6 in + 6 out per chip, 16-bit @ 500 MHz "
                "= 12 GB/s I/O per chip\n\n");

    const u32 origin = fabric.chipAt({0, 0, 0});
    const u32 neighbor = fabric.chipAt({1, 0, 0});
    const u32 farthest = fabric.chipAt({2, 2, 2}); // 6 torus hops

    std::printf("64 B to a neighbor:       %llu cycles\n",
                static_cast<unsigned long long>(
                    fabric.uncontendedLatency(origin, neighbor, 64)));
    std::printf("64 B to the far corner:   %llu cycles (%u hops)\n",
                static_cast<unsigned long long>(
                    fabric.uncontendedLatency(origin, farthest, 64)),
                fabric.hops(origin, farthest));
    std::printf("4 KB to a neighbor:       %llu cycles\n\n",
                static_cast<unsigned long long>(
                    fabric.uncontendedLatency(origin, neighbor, 4096)));

    // Halo exchange: every chip sends 4 KB to each of its six
    // neighbors at cycle 0; report the completion of the whole step.
    Cycle done = 0;
    for (u32 chip = 0; chip < cfg.numChips(); ++chip) {
        const Coord c = fabric.coordOf(chip);
        const Coord neighbors[6] = {
            {(c.x + 1) % 4, c.y, c.z}, {(c.x + 3) % 4, c.y, c.z},
            {c.x, (c.y + 1) % 4, c.z}, {c.x, (c.y + 3) % 4, c.z},
            {c.x, c.y, (c.z + 1) % 4}, {c.x, c.y, (c.z + 3) % 4},
        };
        for (const Coord &n : neighbors)
            done = std::max(
                done, fabric.send(0, chip, fabric.chipAt(n), 4096));
    }
    const double ms = double(done) / double(cfg.clockHz) * 1e6;
    std::printf("halo exchange (4 KB to all 6 neighbors, all chips): "
                "%llu cycles (%.1f us)\n",
                static_cast<unsigned long long>(done), ms);
    std::printf("fabric moved %llu bytes in %llu messages\n",
                static_cast<unsigned long long>(fabric.bytesMoved()),
                static_cast<unsigned long long>(
                    fabric.stats().counterValue("net.messages")));
    return 0;
}
