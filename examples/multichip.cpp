/**
 * @file
 * The cellular approach (paper sections 1 and 2.2): chips replicated
 * in a regular 3-D torus. This example simulates a real 2x2x2 system
 * on the cycle-driven fabric — eight chips running a halo exchange
 * and a distributed STREAM kernel through the remote-access window —
 * and compares the measured zero-load latency with the analytic
 * topology model.
 */

#include <cstdio>

#include "net/topology.h"
#include "workloads/multichip.h"

using namespace cyclops;
using workloads::MultiChipConfig;
using workloads::MultiChipResult;

static void
report(const char *name, const MultiChipResult &r)
{
    std::printf("%s:\n", name);
    std::printf("  %llu cycles, %llu instructions, verified: %s\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.verified ? "yes" : "NO");
    std::printf("  fabric: %llu messages, %llu bytes, "
                "%llu queue cycles, %llu flits in flight after drain\n",
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.bytesMoved),
                static_cast<unsigned long long>(r.queueCycles),
                static_cast<unsigned long long>(r.flitsInFlight));
    std::printf("  fingerprint: %016llx\n\n",
                static_cast<unsigned long long>(r.fingerprint));
}

int
main()
{
    MultiChipConfig cfg;
    cfg.dimX = cfg.dimY = cfg.dimZ = 2;
    cfg.torus = true;
    cfg.threads = 8;
    cfg.words = 32;
    cfg.iters = 2;

    const net::NetConfig net = cfg.systemConfig().fabric.net;
    std::printf("system: %ux%ux%u torus = %u chips\n", net.dimX,
                net.dimY, net.dimZ, net.numChips());
    std::printf("links: 16-bit @ 500 MHz, 6 in + 6 out per chip "
                "= 12 GB/s I/O per chip\n");

    const net::Topology topo(net);
    std::printf("analytic 64 B neighbor latency: %llu cycles "
                "(the fabric reproduces this exactly at zero load)\n\n",
                static_cast<unsigned long long>(
                    topo.uncontendedLatency(0, 1, 64)));

    report("halo exchange (32 words x 6 faces, 2 iterations)",
           workloads::runHaloExchange(cfg));
    report("distributed STREAM scale (32 words from the +x neighbor)",
           workloads::runDistributedStream(cfg));
    return 0;
}
