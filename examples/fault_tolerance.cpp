/**
 * @file
 * The fault-tolerance features sketched in the paper's Section 5: a
 * failed memory bank shrinks and re-maps the address space (MEMSZ
 * SPR); a broken FPU disables its whole quad, and the remaining 31
 * quads keep computing.
 *
 * A small parallel sum runs before and after injecting both faults;
 * the program adapts by reading MEMSZ and by letting the kernel skip
 * the disabled quad.
 */

#include <cstdio>

#include "arch/chip.h"
#include "isa/assembler.h"
#include "kernel/kernel.h"

using namespace cyclops;

namespace
{

/** Each thread sums its slice of a vector and atomically adds it in. */
const char *kSource = R"(
    start:
        mfspr r8, 5          ; MEMSZ: available memory in KB
        ; vector of 1024 words lives at 64 KB; slice = 1024 / r5
        li   r10, 0x10000
        li   r11, 1024
        divu r12, r11, r5    ; elements per thread
        mul  r13, r12, r4    ; my start index
        slli r13, r13, 2
        add  r10, r10, r13   ; my base
        li   r14, 0          ; sum
    loop:
        lw   r15, 0(r10)
        add  r14, r14, r15
        addi r10, r10, 4
        subi r12, r12, 1
        bnez r12, loop
        la   r16, total
        amoadd r17, r16, r14
        halt
        .data
        .align 64
total:  .word 0
)";

u32
runSum(arch::Chip &chip, u32 threads)
{
    kernel::Kernel kern(chip);
    isa::Program prog = isa::assembleOrDie(kSource);
    kern.load(prog);

    // Fill the vector with 1..1024 (sum = 524800).
    for (u32 i = 0; i < 1024; ++i) {
        const u32 value = i + 1;
        chip.writePhys(0x10000 + i * 4, &value, 4);
    }
    kern.spawn(threads, prog.entry);
    kern.run();
    u32 total = 0;
    chip.readPhys(prog.symbol("total"), &total, 4);
    return total;
}

} // namespace

int
main()
{
    {
        arch::Chip healthy;
        std::printf("healthy chip:  MEMSZ=%u KB, sum(1..1024)=%u "
                    "(64 threads)\n",
                    healthy.readSpr(0, isa::kSprMemSize),
                    runSum(healthy, 64));
    }

    arch::Chip faulty;
    // A memory bank dies: the hardware sets MEMSZ and re-maps all
    // addresses so the address space stays contiguous.
    faulty.failBank(7);
    // An FPU breaks: its entire quad is disabled, but there are 31
    // other quads available for computation.
    faulty.disableQuad(2);

    std::printf("after faults:  MEMSZ=%u KB (bank 7 failed), quad 2 "
                "disabled\n",
                faulty.readSpr(0, isa::kSprMemSize));
    const u32 sum = runSum(faulty, 64);
    std::printf("degraded chip: sum(1..1024)=%u on 64 threads, "
                "avoiding quad 2\n", sum);
    std::printf("%s\n", sum == 524800 ? "fault tolerance: OK"
                                      : "fault tolerance: WRONG SUM");
    return sum == 524800 ? 0 : 1;
}
