/**
 * @file
 * Quickstart: assemble a small Cyclops program, run it on a simulated
 * chip, and inspect its console output and statistics.
 *
 *   $ ./quickstart
 *
 * The program computes the 20th Fibonacci number on hardware thread 0
 * and prints it via the kernel's console trap.
 */

#include <cstdio>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "isa/assembler.h"

using namespace cyclops;

int
main()
{
    // 1. Assemble. The ISA is a 3-operand load/store RISC; see
    //    src/isa/assembler.h for the full syntax.
    const char *source = R"(
        ; fib(20) with a simple loop: r5,r6 carry the pair.
        start:
            li   r4, 20
            li   r5, 0          ; fib(0)
            li   r6, 1          ; fib(1)
        loop:
            add  r7, r5, r6
            mv   r5, r6
            mv   r6, r7
            subi r4, r4, 1
            bnez r4, loop
            mv   r4, r5
            trap 2              ; print r4 in decimal
            li   r4, '\n'
            trap 1              ; print one character
            halt
    )";
    isa::Program program = isa::assembleOrDie(source);

    // 2. Build a chip with the paper's default configuration: 128
    //    thread units, 32 quad caches, 16 banks of embedded DRAM.
    arch::Chip chip;
    chip.loadProgram(program);

    // 3. Put an ISA thread unit on hardware thread 0 and run.
    chip.setUnit(0, std::make_unique<arch::ThreadUnit>(0, chip,
                                                       program.entry));
    chip.activate(0);
    if (chip.run() != arch::RunExit::AllHalted) {
        std::fprintf(stderr, "program did not halt\n");
        return 1;
    }

    std::printf("console output: %s", chip.console().c_str());
    std::printf("cycles:         %llu\n",
                static_cast<unsigned long long>(chip.now()));
    std::printf("instructions:   %llu\n",
                static_cast<unsigned long long>(
                    chip.totalInstructions()));
    std::printf("run cycles:     %llu, stall cycles: %llu\n",
                static_cast<unsigned long long>(chip.totalRunCycles()),
                static_cast<unsigned long long>(
                    chip.totalStallCycles()));
    return chip.console() == "6765\n" ? 0 : 1;
}
