/**
 * @file
 * Walks through the paper's STREAM tuning story (Section 3.2) on one
 * chip: out-of-the-box blocked partitioning, then cyclic, then the
 * interest-group local-cache placement, then hand-unrolling — printing
 * the Triad bandwidth after each step.
 */

#include <cstdio>

#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;

namespace
{

void
report(const char *label, const StreamResult &result)
{
    std::printf("  %-44s %7.2f GB/s%s\n", label, result.totalGBs,
                result.verified ? "" : "  (VERIFY FAILED)");
}

} // namespace

int
main()
{
    std::printf("STREAM Triad on 126 threads, 160 elements/thread "
                "(fits the local caches):\n");

    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 126;
    cfg.elementsPerThread = 160;

    report("blocked partitioning (chip-wide cache)", runStream(cfg));

    StreamConfig cyclic = cfg;
    cyclic.partition = StreamPartition::Cyclic;
    report("cyclic partitioning (groups of 8)", runStream(cyclic));

    StreamConfig local = cfg;
    local.localCaches = true;
    report("+ interest groups: blocks in local caches",
           runStream(local));

    StreamConfig unrolled = local;
    unrolled.unroll = 4;
    report("+ 4-way hand-unrolled loops", runStream(unrolled));

    std::printf("\nSame, at the paper's large size (1984 "
                "elements/thread, 4x cache capacity):\n");
    StreamConfig large = unrolled;
    large.elementsPerThread = 1984;
    const StreamResult result = runStream(large);
    report("best configuration, memory-bandwidth bound", result);
    std::printf("\n  (embedded-memory peak is 42.7 GB/s; the paper "
                "reports ~40 GB/s sustained)\n");
    return result.verified ? 0 : 1;
}
